#include "fl/checkpoint.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <set>

#include "tensor/serialize.h"
#include "util/check.h"
#include "util/csv_writer.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace rfed {

namespace {

/// Magic + version of the run-checkpoint container. Bump the version on
/// any layout change; Load aborts on a mismatch rather than misparsing.
constexpr char kCheckpointMagic[8] = {'R', 'F', 'E', 'D',
                                      'C', 'K', 'P', 'T'};
constexpr uint32_t kCheckpointVersion = 1;

void WriteFileOrDie(const std::vector<uint8_t>& buffer,
                    const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  RFED_CHECK(out.good()) << "cannot open " << path;
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
  RFED_CHECK(out.good()) << "write failed for " << path;
}

std::vector<uint8_t> ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RFED_CHECK(in.good()) << "cannot open " << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

/// Appends the FNV-1a footer over everything currently in the buffer.
void AppendChecksum(std::vector<uint8_t>* buffer) {
  const uint32_t checksum = Fnv1a32(buffer->data(), buffer->size());
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&checksum);
  buffer->insert(buffer->end(), p, p + sizeof checksum);
}

/// Verifies the trailing FNV-1a footer and returns the payload length
/// (buffer size minus the footer). Aborts on truncation or mismatch.
size_t VerifyChecksum(const std::vector<uint8_t>& buffer,
                      const std::string& path) {
  RFED_CHECK_GT(buffer.size(), sizeof(uint32_t))
      << path << " is truncated (no checksum footer)";
  const size_t payload = buffer.size() - sizeof(uint32_t);
  uint32_t stored = 0;
  std::memcpy(&stored, buffer.data() + payload, sizeof stored);
  RFED_CHECK_EQ(stored, Fnv1a32(buffer.data(), payload))
      << "checksum mismatch in " << path << " (corrupted file)";
  return payload;
}

/// A float CSV cell: fixed-format when finite, empty otherwise. Every
/// float column uses this, so NaN/Inf — a diverged training loss, an
/// unevaluated round — uniformly renders as a blank cell.
std::string FloatCell(double v, const char* fmt) {
  return std::isfinite(v) ? StrFormat(fmt, v) : "";
}

}  // namespace

void CheckpointWriter::WriteRaw(const void* data, size_t bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out_->insert(out_->end(), p, p + bytes);
}

void CheckpointWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  WriteRaw(s.data(), s.size());
}

void CheckpointWriter::WriteTensor(const Tensor& t) {
  std::vector<uint8_t> encoded;
  SerializeTensor(t, &encoded);
  WriteU64(static_cast<uint64_t>(encoded.size()));
  WriteRaw(encoded.data(), encoded.size());
}

void CheckpointWriter::WriteRng(const RngState& s) {
  for (uint64_t word : s.words) WriteU64(word);
  WriteBool(s.has_cached_normal);
  WriteDouble(s.cached_normal);
}

void CheckpointReader::ReadRaw(void* data, size_t bytes) {
  RFED_CHECK_LE(bytes, remaining()) << "checkpoint payload truncated";
  std::memcpy(data, buffer_->data() + cursor_, bytes);
  cursor_ += bytes;
}

uint32_t CheckpointReader::ReadU32() {
  uint32_t v = 0;
  ReadRaw(&v, sizeof v);
  return v;
}
uint64_t CheckpointReader::ReadU64() {
  uint64_t v = 0;
  ReadRaw(&v, sizeof v);
  return v;
}
int32_t CheckpointReader::ReadI32() {
  int32_t v = 0;
  ReadRaw(&v, sizeof v);
  return v;
}
int64_t CheckpointReader::ReadI64() {
  int64_t v = 0;
  ReadRaw(&v, sizeof v);
  return v;
}
double CheckpointReader::ReadDouble() {
  double v = 0.0;
  ReadRaw(&v, sizeof v);
  return v;
}

std::string CheckpointReader::ReadString() {
  const uint32_t length = ReadU32();
  RFED_CHECK_LE(length, remaining()) << "checkpoint payload truncated";
  std::string s(reinterpret_cast<const char*>(buffer_->data() + cursor_),
                length);
  cursor_ += length;
  return s;
}

Tensor CheckpointReader::ReadTensor() {
  const uint64_t bytes = ReadU64();
  RFED_CHECK_LE(bytes, remaining()) << "checkpoint payload truncated";
  std::vector<uint8_t> encoded(buffer_->data() + cursor_,
                               buffer_->data() + cursor_ + bytes);
  cursor_ += bytes;
  size_t offset = 0;
  Tensor t = DeserializeTensor(encoded, &offset);
  RFED_CHECK_EQ(offset, encoded.size()) << "malformed tensor in checkpoint";
  return t;
}

RngState CheckpointReader::ReadRng() {
  RngState s;
  for (uint64_t& word : s.words) word = ReadU64();
  s.has_cached_normal = ReadBool();
  s.cached_normal = ReadDouble();
  return s;
}

void SaveTensorToFile(const Tensor& tensor, const std::string& path) {
  std::vector<uint8_t> buffer;
  SerializeTensor(tensor, &buffer);
  AppendChecksum(&buffer);
  WriteFileOrDie(buffer, path);
}

Tensor LoadTensorFromFile(const std::string& path) {
  const std::vector<uint8_t> buffer = ReadFileOrDie(path);
  const size_t payload = VerifyChecksum(buffer, path);
  size_t offset = 0;
  Tensor tensor = DeserializeTensor(buffer, &offset);
  RFED_CHECK_EQ(offset, payload) << "trailing bytes in " << path;
  return tensor;
}

void RunCheckpoint::Save(const std::string& path) const {
  std::vector<uint8_t> buffer;
  buffer.insert(buffer.end(), kCheckpointMagic,
                kCheckpointMagic + sizeof kCheckpointMagic);
  CheckpointWriter w(&buffer);
  w.WriteU32(kCheckpointVersion);
  w.WriteI32(next_round);
  w.WriteString(history.algorithm);
  w.WriteU32(static_cast<uint32_t>(history.rounds.size()));
  for (const RoundMetrics& r : history.rounds) {
    w.WriteI32(r.round);
    w.WriteDouble(r.train_loss);
    w.WriteDouble(r.test_accuracy);
    w.WriteDouble(r.round_seconds);
    w.WriteI64(r.round_bytes);
    w.WriteI64(r.delivered_messages);
    w.WriteI64(r.dropped_messages);
    w.WriteI64(r.retried_messages);
    w.WriteDouble(r.virtual_ms);
    w.WriteDouble(r.client_p50_ms);
    w.WriteDouble(r.client_p95_ms);
    w.WriteI32(r.stragglers_cut);
    w.WriteDouble(r.mean_staleness);
    w.WriteI64(r.peak_scratch_bytes);
    w.WriteU32(static_cast<uint32_t>(r.metrics.size()));
    for (const auto& [name, value] : r.metrics) {
      w.WriteString(name);
      w.WriteDouble(value);
    }
  }
  w.WriteU64(static_cast<uint64_t>(algorithm_state.size()));
  buffer.insert(buffer.end(), algorithm_state.begin(), algorithm_state.end());
  AppendChecksum(&buffer);
  WriteFileOrDie(buffer, path);
}

RunCheckpoint RunCheckpoint::Load(const std::string& path) {
  std::vector<uint8_t> buffer = ReadFileOrDie(path);
  const size_t payload = VerifyChecksum(buffer, path);
  RFED_CHECK_GE(payload, sizeof kCheckpointMagic)
      << path << " is truncated (no header)";
  RFED_CHECK(std::memcmp(buffer.data(), kCheckpointMagic,
                         sizeof kCheckpointMagic) == 0)
      << path << " is not a run checkpoint (bad magic)";
  // Strip the footer so the reader's end-of-buffer is the payload end.
  buffer.resize(payload);
  std::vector<uint8_t> body(buffer.begin() + sizeof kCheckpointMagic,
                            buffer.end());
  CheckpointReader r(body);
  const uint32_t version = r.ReadU32();
  RFED_CHECK_EQ(version, kCheckpointVersion)
      << "unsupported checkpoint version in " << path;
  RunCheckpoint ck;
  ck.next_round = r.ReadI32();
  ck.history.algorithm = r.ReadString();
  const uint32_t num_rounds = r.ReadU32();
  RFED_CHECK_EQ(num_rounds, static_cast<uint32_t>(ck.next_round))
      << "checkpoint history length disagrees with next_round in " << path;
  ck.history.rounds.reserve(num_rounds);
  for (uint32_t i = 0; i < num_rounds; ++i) {
    RoundMetrics m;
    m.round = r.ReadI32();
    m.train_loss = r.ReadDouble();
    m.test_accuracy = r.ReadDouble();
    m.round_seconds = r.ReadDouble();
    m.round_bytes = r.ReadI64();
    m.delivered_messages = r.ReadI64();
    m.dropped_messages = r.ReadI64();
    m.retried_messages = r.ReadI64();
    m.virtual_ms = r.ReadDouble();
    m.client_p50_ms = r.ReadDouble();
    m.client_p95_ms = r.ReadDouble();
    m.stragglers_cut = r.ReadI32();
    m.mean_staleness = r.ReadDouble();
    m.peak_scratch_bytes = r.ReadI64();
    const uint32_t num_metrics = r.ReadU32();
    m.metrics.reserve(num_metrics);
    for (uint32_t j = 0; j < num_metrics; ++j) {
      std::string name = r.ReadString();
      const double value = r.ReadDouble();
      m.metrics.emplace_back(std::move(name), value);
    }
    ck.history.rounds.push_back(std::move(m));
  }
  const uint64_t state_bytes = r.ReadU64();
  RFED_CHECK_EQ(state_bytes, r.remaining())
      << "trailing bytes in " << path;
  ck.algorithm_state.assign(body.end() - static_cast<int64_t>(state_bytes),
                            body.end());
  return ck;
}

void SaveHistoryCsv(const RunHistory& history, const std::string& path) {
  // The fixed columns are followed by one column per observability
  // metric seen in any round (sorted union of names), blank where a
  // round has no sample for that name. Metric names are already sorted
  // within each round's snapshot, so the union stays sorted too.
  std::set<std::string> metric_names;
  for (const RoundMetrics& r : history.rounds) {
    for (const auto& kv : r.metrics) metric_names.insert(kv.first);
  }
  std::vector<std::string> header = {
      "round", "train_loss", "test_accuracy", "round_seconds", "round_bytes",
      "delivered", "dropped", "retried", "virtual_ms", "client_p50_ms",
      "client_p95_ms", "stragglers_cut", "mean_staleness",
      "peak_scratch_bytes"};
  header.insert(header.end(), metric_names.begin(), metric_names.end());
  CsvWriter csv(path, header);
  for (const RoundMetrics& r : history.rounds) {
    std::vector<std::string> row = {
        std::to_string(r.round),
        FloatCell(r.train_loss, "%.6f"),
        FloatCell(r.test_accuracy, "%.6f"),
        FloatCell(r.round_seconds, "%.6f"),
        std::to_string(r.round_bytes),
        std::to_string(r.delivered_messages),
        std::to_string(r.dropped_messages),
        std::to_string(r.retried_messages),
        FloatCell(r.virtual_ms, "%.3f"),
        FloatCell(r.client_p50_ms, "%.3f"),
        FloatCell(r.client_p95_ms, "%.3f"),
        std::to_string(r.stragglers_cut),
        FloatCell(r.mean_staleness, "%.3f"),
        std::to_string(r.peak_scratch_bytes)};
    std::map<std::string, double> by_name(r.metrics.begin(), r.metrics.end());
    for (const std::string& name : metric_names) {
      auto it = by_name.find(name);
      row.push_back(it == by_name.end() ? "" : FloatCell(it->second, "%g"));
    }
    csv.WriteRow(row);
  }
}

}  // namespace rfed
