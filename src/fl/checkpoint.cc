#include "fl/checkpoint.h"

#include <cmath>
#include <fstream>
#include <map>
#include <set>

#include "tensor/serialize.h"
#include "util/check.h"
#include "util/csv_writer.h"
#include "util/string_util.h"

namespace rfed {

void SaveTensorToFile(const Tensor& tensor, const std::string& path) {
  std::vector<uint8_t> buffer;
  SerializeTensor(tensor, &buffer);
  std::ofstream out(path, std::ios::binary);
  RFED_CHECK(out.good()) << "cannot open " << path;
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
  RFED_CHECK(out.good()) << "write failed for " << path;
}

Tensor LoadTensorFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RFED_CHECK(in.good()) << "cannot open " << path;
  std::vector<uint8_t> buffer((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
  size_t offset = 0;
  Tensor tensor = DeserializeTensor(buffer, &offset);
  RFED_CHECK_EQ(offset, buffer.size()) << "trailing bytes in " << path;
  return tensor;
}

void SaveHistoryCsv(const RunHistory& history, const std::string& path) {
  // The fixed columns are followed by one column per observability
  // metric seen in any round (sorted union of names), blank where a
  // round has no sample for that name. Metric names are already sorted
  // within each round's snapshot, so the union stays sorted too.
  std::set<std::string> metric_names;
  for (const RoundMetrics& r : history.rounds) {
    for (const auto& kv : r.metrics) metric_names.insert(kv.first);
  }
  std::vector<std::string> header = {
      "round", "train_loss", "test_accuracy", "round_seconds", "round_bytes",
      "delivered", "dropped", "retried", "virtual_ms", "client_p50_ms",
      "client_p95_ms", "stragglers_cut", "mean_staleness",
      "peak_scratch_bytes"};
  header.insert(header.end(), metric_names.begin(), metric_names.end());
  CsvWriter csv(path, header);
  for (const RoundMetrics& r : history.rounds) {
    std::vector<std::string> row = {
        std::to_string(r.round), StrFormat("%.6f", r.train_loss),
        std::isnan(r.test_accuracy) ? "" : StrFormat("%.6f", r.test_accuracy),
        StrFormat("%.6f", r.round_seconds),
        std::to_string(r.round_bytes),
        std::to_string(r.delivered_messages),
        std::to_string(r.dropped_messages),
        std::to_string(r.retried_messages),
        StrFormat("%.3f", r.virtual_ms),
        StrFormat("%.3f", r.client_p50_ms),
        StrFormat("%.3f", r.client_p95_ms),
        std::to_string(r.stragglers_cut),
        StrFormat("%.3f", r.mean_staleness),
        std::to_string(r.peak_scratch_bytes)};
    std::map<std::string, double> by_name(r.metrics.begin(), r.metrics.end());
    for (const std::string& name : metric_names) {
      auto it = by_name.find(name);
      row.push_back(it == by_name.end() ? "" : StrFormat("%g", it->second));
    }
    csv.WriteRow(row);
  }
}

}  // namespace rfed
