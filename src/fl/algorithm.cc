#include "fl/algorithm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "autograd/tape.h"
#include "fl/checkpoint.h"
#include "fl/model_state.h"
#include "fl/robust_agg.h"
#include "fl/selection.h"
#include "fl/shard_agg.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/autotune.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace rfed {

namespace {

/// Nearest-rank percentile of a latency sample; 0 on an empty sample.
double PercentileMs(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(p * static_cast<double>(values.size()));
  const size_t index = static_cast<size_t>(
      std::clamp<double>(rank - 1.0, 0.0,
                         static_cast<double>(values.size() - 1)));
  return values[index];
}

// Staleness of each aggregated async update, in server versions. Edges
// sit between integers so bucket k holds exactly staleness == k (0, 1,
// 2, 3–4, 5–8, >8).
obs::Histogram* StalenessHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Get().GetHistogram(
      "fl.staleness", {0.5, 1.5, 2.5, 4.5, 8.5});
  return h;
}

obs::Counter* StragglersCutCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("fl.stragglers_cut");
  return c;
}

/// Magic word opening the pool-mode checkpoint layout (sparse per-client
/// sections keyed by client id, instead of the legacy dense tables).
constexpr uint32_t kPoolStateMagic = 0x700c57a7u;

const Dataset* PoolTrainData(const ClientPool* pool) {
  RFED_CHECK(pool != nullptr);
  return &pool->train_pool();
}

}  // namespace

FederatedAlgorithm::FederatedAlgorithm(std::string name, const FlConfig& config,
                                       const Dataset* train_data,
                                       std::vector<ClientView> clients,
                                       const ModelFactory& model_factory)
    : FederatedAlgorithm(std::move(name), config, train_data,
                         std::move(clients), nullptr, model_factory) {}

FederatedAlgorithm::FederatedAlgorithm(std::string name, const FlConfig& config,
                                       const ClientPool* pool,
                                       const ModelFactory& model_factory)
    : FederatedAlgorithm(std::move(name), config, PoolTrainData(pool), {},
                         pool, model_factory) {}

FederatedAlgorithm::FederatedAlgorithm(std::string name, const FlConfig& config,
                                       const Dataset* train_data,
                                       std::vector<ClientView> clients,
                                       const ClientPool* pool,
                                       const ModelFactory& model_factory)
    : name_(std::move(name)),
      config_(config),
      train_data_(train_data),
      clients_(std::move(clients)),
      client_pool_(pool),
      // The adversary draws its bad-actor choice from its own seed
      // lineage (like the channel), so enabling an attack never perturbs
      // the training randomness.
      adversary_(config.adversary, config.seed ^ 0xbadc11e575a1ULL,
                 pool != nullptr ? pool->num_clients()
                                 : static_cast<int>(clients_.size())),
      model_factory_(model_factory),
      rng_(config.seed),
      // The channel draws from its own stream so that enabling faults
      // never perturbs sampling/batching/init randomness.
      channel_(config.fault, config.seed ^ 0xfa171c4a11e1ULL, &comm_),
      network_model_(config.sim.network) {
  RFED_CHECK(train_data_ != nullptr);
  if (pool_mode()) {
    RFED_CHECK(clients_.empty());
    // The O(N)-per-round pieces have no lazy counterpart: loss-adaptive
    // selection scans every client's last loss, and the async policy
    // scans for idle clients. Cross-device runs use uniform sampling and
    // the sync/deadline policies.
    RFED_CHECK(config_.client_selection == "uniform")
        << "pool mode supports uniform client selection only";
    RFED_CHECK(config_.sim.mode != SimMode::kAsync)
        << "pool mode supports the sync and deadline round policies only";
  } else {
    RFED_CHECK(!clients_.empty());
  }
  if (config_.shard_fanout != 0) {
    RFED_CHECK(IsPow2(config_.shard_fanout))
        << "shard_fanout must be a power of two, got "
        << config_.shard_fanout;
  }
  RFED_CHECK_GE(config_.stream_chunk, 0);
  if (config_.stream_chunk > 0) {
    RFED_CHECK_GT(config_.shard_fanout, 0)
        << "stream_chunk needs shard_fanout > 0 (streaming reproduces the "
           "canonical shard tree, not the legacy flat mean)";
  }
  if (config_.sim.mode == SimMode::kDeadline) {
    RFED_CHECK_GT(config_.sim.deadline_ms, 0.0)
        << "deadline mode needs sim.deadline_ms > 0";
  }
  if (config_.sim.mode == SimMode::kAsync) {
    RFED_CHECK_GE(config_.sim.async_buffer, 1)
        << "async mode needs sim.async_buffer >= 1";
  }
  // Intra-op kernel parallelism (tensor/kernels.h). Results are
  // bit-identical for every thread count, so this only affects speed.
  SetKernelThreads(config_.kernel_threads);
  // Same contract for the tile autotuner: every candidate it may pick
  // computes the canonical summation order, so enabling it never
  // changes a run's bytes, only its wall time.
  {
    AutotuneConfig tune;
    tune.enabled = config_.kernel_autotune;
    tune.cache_file = config_.kernel_autotune_cache;
    SetAutotuneConfig(tune);
  }
  // Tracing is process-global; the flag only ever turns it on so that a
  // traced run is never silently disabled by a second algorithm instance.
  if (config_.trace) obs::EnableTracing(true);

  // FedAvg weights p_k = n_k / n. Pool mode computes them O(1) per client
  // (equal-size views) and never materializes the dense table.
  if (!pool_mode()) {
    int64_t total = 0;
    for (const auto& c : clients_) {
      RFED_CHECK(!c.train_indices.empty());
      total += static_cast<int64_t>(c.train_indices.size());
    }
    weights_.reserve(clients_.size());
    for (const auto& c : clients_) {
      weights_.push_back(static_cast<double>(c.train_indices.size()) /
                         static_cast<double>(total));
    }
  }

  Rng init_rng = rng_.Fork();
  model_ = model_factory_(&init_rng);
  global_state_ = FlattenParameters(model_->Parameters());
  model_bytes_ = StateBytes(model_->Parameters());

  // Legacy mode forks one batcher stream per client here, in client
  // order — a sequential lineage the goldens pin, which is exactly why
  // it cannot scale: stream k depends on k forks having happened. Pool
  // mode derives batcher streams on materialization from the
  // order-independent MixSeed lineage instead, and builds nothing yet.
  if (!pool_mode()) {
    batchers_.reserve(clients_.size());
    for (const auto& c : clients_) {
      batchers_.emplace_back(train_data_, c.train_indices, config_.batch_size,
                             rng_.Fork());
    }
  }

  compressor_ = MakeCompressor(config_.upload_compressor);
  compression_enabled_ = config_.upload_compressor != "none";
  if (!pool_mode()) {
    last_losses_.assign(clients_.size(),
                        std::numeric_limits<double>::quiet_NaN());
  }

  RFED_CHECK(KnownAggregator(config_.robust.aggregator))
      << "unknown aggregator '" << config_.robust.aggregator
      << "' (mean|trimmed_mean|median|norm_clip)";
  RFED_CHECK_GE(config_.robust.trim_fraction, 0.0);
  RFED_CHECK_LT(config_.robust.trim_fraction, 0.5);
  RFED_CHECK_GT(config_.robust.clip_multiplier, 0.0);
  if (!pool_mode()) rejection_counts_.assign(clients_.size(), 0);
  // Eager registration keeps the CSV columns stable whether or not any
  // update is ever quarantined or clipped.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  m_quarantined_ = registry.GetCounter("fl.quarantined_updates");
  m_quarantined_maps_ = registry.GetCounter("fl.quarantined_maps");
  m_clipped_ = registry.GetCounter("fl.clipped_updates");
  // Pre-clip L2 norms of the survivors' deltas under the norm_clip
  // aggregator (log-spaced buckets; the attack sweeps live far right).
  m_update_norm_ =
      registry.GetHistogram("fl.update_norm", {0.01, 0.1, 1.0, 10.0, 100.0});

  // The compute model keys its draws on (seed, client, round) with its
  // own lineage, like the channel: stragglers never perturb training
  // randomness, and the draws are call-order independent.
  compute_model_ = std::make_unique<ComputeTimeModel>(
      config_.sim.compute, config_.seed ^ 0x5caff01d57a66ULL, num_clients());
  // Async-only bookkeeping; pool mode forbids async and skips the O(N)
  // table.
  if (!pool_mode()) client_busy_.assign(clients_.size(), 0);

  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }

  // Scale gauges exist only on pool/sharded runs, so legacy runs' CSV
  // columns are byte-unchanged.
  if (pool_mode() || config_.shard_fanout > 0) {
    m_shard_count_ = registry.GetGauge("fl.shard_count");
    m_agg_peak_bytes_ = registry.GetGauge("fl.agg_peak_bytes");
    m_materialized_clients_ = registry.GetGauge("data.materialized_clients");
    m_client_state_bytes_ = registry.GetGauge("data.client_state_bytes");
    m_materialized_clients_->Set(
        static_cast<double>(materialized_clients()));
    m_client_state_bytes_->Set(0.0);
  }
}

double FederatedAlgorithm::client_weight(int k) const {
  return client_pool_ != nullptr ? client_pool_->ClientWeight(k)
                                 : weights_[static_cast<size_t>(k)];
}

int64_t FederatedAlgorithm::rejection_count(int client) const {
  if (client_pool_ == nullptr) {
    return rejection_counts_[static_cast<size_t>(client)];
  }
  const auto it = sparse_rejections_.find(client);
  return it == sparse_rejections_.end() ? 0 : it->second;
}

const ClientView& FederatedAlgorithm::client_view(int k) const {
  if (client_pool_ == nullptr) return clients_[static_cast<size_t>(k)];
  EnsureClientMaterialized(k);
  return lazy_views_.at(k);
}

void FederatedAlgorithm::EnsureClientMaterialized(int k) const {
  if (client_pool_ == nullptr) return;
  if (lazy_batchers_.find(k) != lazy_batchers_.end()) return;
  RFED_CHECK_GE(k, 0);
  RFED_CHECK_LT(k, num_clients());
  ClientView view;
  view.train_indices = client_pool_->TrainIndices(k);
  view.test_indices = client_pool_->TestIndices(k);
  // The batcher stream is a pure function of (seed, k): materializing a
  // client in round 40 yields the same stream as materializing it at
  // startup would have (the lazy-vs-eager differential invariant).
  Rng batcher_rng(
      MixSeed(config_.seed, kPoolBatcherLineage, static_cast<uint64_t>(k)));
  Batcher batcher(train_data_, view.train_indices, config_.batch_size,
                  batcher_rng);
  // The batcher copies the train indices (its shuffle mutates them), so
  // the resident cost is train x2 + test indices plus fixed overhead.
  lazy_state_bytes_ +=
      static_cast<int64_t>(2 * view.train_indices.size() +
                           view.test_indices.size()) *
          static_cast<int64_t>(sizeof(int)) +
      static_cast<int64_t>(sizeof(ClientView) + sizeof(Batcher));
  lazy_views_.emplace(k, std::move(view));
  lazy_batchers_.emplace(k, std::move(batcher));
  if (m_materialized_clients_ != nullptr) {
    m_materialized_clients_->Set(static_cast<double>(lazy_batchers_.size()));
    m_client_state_bytes_->Set(static_cast<double>(lazy_state_bytes_));
  }
}

Batcher& FederatedAlgorithm::BatcherFor(int k) {
  if (client_pool_ == nullptr) return batchers_[static_cast<size_t>(k)];
  EnsureClientMaterialized(k);
  return lazy_batchers_.at(k);
}

void FederatedAlgorithm::RecordLoss(int client, double loss) {
  if (client_pool_ == nullptr) {
    last_losses_[static_cast<size_t>(client)] = loss;
  } else {
    sparse_losses_[client] = loss;
  }
}

void FederatedAlgorithm::MaterializeAllClients() {
  RFED_CHECK(pool_mode());
  for (int k = 0; k < num_clients(); ++k) EnsureClientMaterialized(k);
}

FeatureModel* FederatedAlgorithm::GlobalModel() {
  LoadParameters(global_state_, model_->Parameters());
  return model_.get();
}

std::vector<int> FederatedAlgorithm::SampleClients() {
  const int n = num_clients();
  int k = static_cast<int>(std::lround(config_.sample_ratio * n));
  k = std::clamp(k, 1, n);
  if (client_pool_ != nullptr) {
    // O(cohort) Floyd sampling; the sorted cohort doubles as the
    // canonical shard order.
    return SparseUniformSelection(n, k, &rng_);
  }
  if (config_.client_selection == "loss" && k < n) {
    return LossProportionalSelection(last_losses_, k, &rng_);
  }
  return UniformSelection(n, k, &rng_);
}

Tensor FederatedAlgorithm::CompressUploadedState(const Tensor& state,
                                                 bool* delivered) {
  if (!compression_enabled_) {
    const bool ok = ChargeModelUpload();
    if (delivered != nullptr) *delivered = ok;
    return state;
  }
  Tensor delta = state;
  delta.SubInPlace(global_state_);
  Rng fork = rng_.Fork();
  Tensor reconstructed = compressor_->RoundTrip(delta, &fork);
  reconstructed.AddInPlace(global_state_);
  const bool ok =
      channel_.Upload(compressor_->WireBytes(state.size()), channel_kind::kUpdate);
  if (delivered != nullptr) *delivered = ok;
  return reconstructed;
}

std::vector<int> FederatedAlgorithm::CappedIndices(int client) const {
  const auto& all = client_view(client).train_indices;
  const int64_t cap = config_.max_examples_per_pass;
  if (cap <= 0 || static_cast<int64_t>(all.size()) <= cap) return all;
  // Deterministic per-client subsample: stable stride over the index list.
  std::vector<int> out;
  out.reserve(static_cast<size_t>(cap));
  const double stride =
      static_cast<double>(all.size()) / static_cast<double>(cap);
  for (int64_t i = 0; i < cap; ++i) {
    out.push_back(all[static_cast<size_t>(
        std::min<double>(i * stride, static_cast<double>(all.size() - 1)))]);
  }
  return out;
}

std::pair<Tensor, double> FederatedAlgorithm::LocalTrain(
    int round, int client, const Tensor& init_state, FeatureModel* model) {
  if (model == nullptr) model = model_.get();
  auto params = model->Parameters();
  LoadParameters(init_state, params);
  auto optimizer = MakeOptimizer(config_.optimizer, params, config_.lr);
  Batcher& batcher = BatcherFor(client);

  // One arena-backed tape per bout: step 0 records the graph, later
  // steps with the same batch signature replay it over fresh data —
  // bit-identical to a fresh build (same ops, same creation order, same
  // cached backward order), so goldens are unchanged. ExtraLoss hooks
  // are recorded too; every implementation builds round-constant ops
  // (MMD targets are fixed for the round, FedProx works in
  // PostBackward), so a bout-scoped replay is sound.
  ag::TapeSession session(
      {config_.autograd.static_graph, config_.autograd.checkpoint});
  obs::Gauge* allocs_gauge =
      obs::MetricsRegistry::Get().GetGauge("autograd.allocs_per_step");

  const int steps = LocalSteps(client);
  double loss_sum = 0.0;
  for (int step = 0; step < steps; ++step) {
    Batch batch = batcher.Next();
    // Data poisoning: a label-flip adversary trains honestly but on
    // remapped labels (no-op for honest clients and other modes).
    adversary_.CorruptLabels(client, &batch.labels,
                             train_data_->num_classes());
    const int64_t allocs_before = BufferPool::ThreadAllocCount();
    ag::ReplayBindings bind{batch.images.size() > 0 ? &batch.images : nullptr,
                            &batch.tokens, &batch.labels};
    Variable loss;
    if (session.CanReplay(bind)) {
      loss = session.Replay(bind);
    } else {
      session.BeginRecord(bind);
      ModelOutput out = model->Forward(batch);
      loss = CrossEntropyLoss(out.logits, batch.labels);
      Variable extra = ExtraLoss(client, out, batch);
      if (extra.valid()) loss = ag::Add(loss, extra);
      session.EndRecord(loss);
    }
    optimizer->ZeroGrad();
    loss.Backward();
    PostBackward(client, params);
    optimizer->Step();
    loss_sum += static_cast<double>(loss.value().ToScalar());
    // Pool misses this step on this thread; O(1) (0 in the steady state)
    // once the bout's graphs are recorded and the freelists are warm.
    allocs_gauge->Set(
        static_cast<double>(BufferPool::ThreadAllocCount() - allocs_before));
  }
  return {FlattenParameters(params), loss_sum / static_cast<double>(steps)};
}

std::vector<uint8_t> FederatedAlgorithm::EncodeTrainContextFor(
    int round, int client) const {
  std::vector<uint8_t> blob;
  CheckpointWriter writer(&blob);
  EncodeTrainContext(round, client, &writer);
  return blob;
}

void FederatedAlgorithm::ApplyTrainContext(int round, int client,
                                           const std::vector<uint8_t>& blob) {
  CheckpointReader reader(blob);
  DecodeTrainContext(round, client, &reader);
  RFED_CHECK(reader.AtEnd()) << "trailing bytes in train context for client "
                             << client;
}

std::pair<Tensor, double> FederatedAlgorithm::ExecuteLocalTraining(int round,
                                                                   int client) {
  RFED_CHECK_GE(client, 0);
  RFED_CHECK_LT(client, num_clients());
  return LocalTrain(round, client, global_state_);
}

std::vector<uint8_t> FederatedAlgorithm::EncodeBatcherBaseFor(int client) {
  RFED_CHECK_GE(client, 0);
  RFED_CHECK_LT(client, num_clients());
  EnsureClientMaterialized(client);
  const BatcherState s = BatcherFor(client).SaveState();
  std::vector<uint8_t> blob;
  CheckpointWriter w(&blob);
  w.WriteU32(static_cast<uint32_t>(s.indices.size()));
  for (int index : s.indices) w.WriteI32(index);
  w.WriteU64(s.cursor);
  w.WriteRng(s.rng);
  return blob;
}

void FederatedAlgorithm::InstallBatcherBase(int client,
                                            const std::vector<uint8_t>& blob) {
  RFED_CHECK_GE(client, 0);
  RFED_CHECK_LT(client, num_clients());
  EnsureClientMaterialized(client);
  CheckpointReader r(blob);
  BatcherState s;
  const uint32_t num_indices = r.ReadU32();
  s.indices.reserve(num_indices);
  for (uint32_t i = 0; i < num_indices; ++i) s.indices.push_back(r.ReadI32());
  s.cursor = r.ReadU64();
  s.rng = r.ReadRng();
  RFED_CHECK(r.AtEnd()) << "trailing bytes in batcher base for client "
                        << client;
  BatcherFor(client).LoadState(s);
}

void FederatedAlgorithm::SkipLocalBatches(int client) {
  Batcher& batcher = BatcherFor(client);
  const int steps = LocalSteps(client);
  for (int step = 0; step < steps; ++step) batcher.Skip();
}

std::pair<Tensor, double> FederatedAlgorithm::DispatchTrain(
    int round, int client, const Tensor& init_state, FeatureModel* model,
    bool already_submitted) {
  if (train_executor_ == nullptr) {
    return LocalTrain(round, client, init_state, model);
  }
  if (!already_submitted) {
    // Snapshot the batcher base before the Skip() mirror below: the JOB
    // must carry the pre-training stream position it expects the
    // executing replica to start from.
    train_executor_->Submit(round, client, init_state,
                            EncodeTrainContextFor(round, client),
                            EncodeBatcherBaseFor(client));
    // The worker's LocalTrain consumes batches from its replica of this
    // client's stream; mirror the cursor/shuffle advancement here so the
    // server's state (and its checkpoints) stay authoritative.
    SkipLocalBatches(client);
  }
  return train_executor_->Collect(round, client);
}

double FederatedAlgorithm::EvaluateLocalLoss(int client, const Tensor& state,
                                             FeatureModel* model) {
  if (model == nullptr) model = model_.get();
  auto params = model->Parameters();
  LoadParameters(state, params);
  const std::vector<int> indices = CappedIndices(client);
  Batch batch = train_data_->GetBatch(indices);
  ModelOutput out = model->Forward(batch);
  Variable loss = CrossEntropyLoss(out.logits, batch.labels);
  return static_cast<double>(loss.value().ToScalar());
}

Tensor FederatedAlgorithm::ComputeClientDelta(int client, const Tensor& state,
                                              bool use_logits) {
  auto params = Params();
  LoadParameters(state, params);
  const std::vector<int> indices = CappedIndices(client);
  Batch batch = train_data_->GetBatch(indices);
  ModelOutput out = model_->Forward(batch);
  return MeanRows(use_logits ? out.logits.value() : out.features.value());
}

bool FederatedAlgorithm::ChargeModelDownload() {
  return channel_.Download(model_bytes_);
}
bool FederatedAlgorithm::ChargeModelUpload() {
  return channel_.Upload(model_bytes_, channel_kind::kUpdate);
}

void FederatedAlgorithm::Aggregate(int round, const std::vector<int>& selected,
                                   const std::vector<Tensor>& new_states,
                                   const std::vector<double>& start_losses) {
  if (!config_.robust.mean()) {
    global_state_ = RobustCombine(selected, new_states, global_state_);
    return;
  }
  const bool scaled = !agg_scale_.empty();
  if (scaled) RFED_CHECK_EQ(agg_scale_.size(), selected.size());
  if (config_.shard_fanout > 0) {
    // Hierarchical mean: scaled leaves summed by the canonical pairwise
    // shard tree, then one division by the total weight. Opt-in — the
    // result is byte-identical across every power-of-two fanout and
    // thread count, but not to the flat loop below (different float
    // association), which is why fanout 0 stays the default.
    std::vector<float> scales(selected.size());
    double weight_sum = 0.0;
    for (size_t i = 0; i < selected.size(); ++i) {
      double w = client_weight(selected[i]);
      if (scaled) w *= agg_scale_[i];
      weight_sum += w;
      scales[i] = static_cast<float>(w);
    }
    RFED_CHECK_GT(weight_sum, 0.0);
    Tensor next = ShardTreeWeightedSum(new_states, scales,
                                       config_.shard_fanout, pool_.get());
    next.MulInPlace(static_cast<float>(1.0 / weight_sum));
    if (m_shard_count_ != nullptr) {
      m_shard_count_->Set(static_cast<double>(ShardCount(
          static_cast<int64_t>(new_states.size()), config_.shard_fanout)));
      m_agg_peak_bytes_->Set(static_cast<double>(new_states.size()) *
                             static_cast<double>(global_state_.size()) *
                             sizeof(float));
    }
    global_state_ = std::move(next);
    return;
  }
  // The FedAvg weighted mean below is the original accumulation loop,
  // untouched: its float-op order is pinned by the golden suite.
  double weight_sum = 0.0;
  for (size_t i = 0; i < selected.size(); ++i) {
    const double w = client_weight(selected[i]);
    weight_sum += scaled ? w * agg_scale_[i] : w;
  }
  RFED_CHECK_GT(weight_sum, 0.0);
  Tensor next(global_state_.shape());
  for (size_t i = 0; i < selected.size(); ++i) {
    double w = client_weight(selected[i]);
    if (scaled) w *= agg_scale_[i];
    next.Axpy(static_cast<float>(w / weight_sum), new_states[i]);
  }
  global_state_ = std::move(next);
}

Tensor FederatedAlgorithm::RobustCombine(const std::vector<int>& selected,
                                         const std::vector<Tensor>& values,
                                         const Tensor& reference) {
  const bool scaled = !agg_scale_.empty();
  if (scaled) RFED_CHECK_EQ(agg_scale_.size(), selected.size());
  std::vector<double> combine_weights(selected.size());
  for (size_t i = 0; i < selected.size(); ++i) {
    combine_weights[i] = client_weight(selected[i]);
    if (scaled) combine_weights[i] *= agg_scale_[i];
  }
  const RobustAggOptions& robust = config_.robust;
  // Sharded runs cut the per-coordinate statistics into parallel blocks
  // (fl/shard_agg.h) — byte-identical to the flat rules below for every
  // fanout and thread count, since coordinates are independent.
  const bool sharded = config_.shard_fanout > 0;
  if (robust.aggregator == "trimmed_mean") {
    return sharded ? ShardedTrimmedMean(values, combine_weights,
                                        robust.trim_fraction, pool_.get())
                   : CoordinateTrimmedMean(values, combine_weights,
                                           robust.trim_fraction);
  }
  if (robust.aggregator == "median") {
    return sharded ? ShardedMedian(values, combine_weights, pool_.get())
                   : CoordinateMedian(values, combine_weights);
  }
  RFED_CHECK(robust.aggregator == "norm_clip")
      << "unknown aggregator '" << robust.aggregator << "'";
  NormClipReport report;
  Tensor out =
      sharded ? ShardedNormBoundedMean(reference, values, combine_weights,
                                       robust.clip_multiplier, &report,
                                       pool_.get())
              : NormBoundedMean(reference, values, combine_weights,
                                robust.clip_multiplier, &report);
  m_clipped_->Add(report.clipped);
  for (double norm : report.norms) m_update_norm_->Observe(norm);
  return out;
}

void FederatedAlgorithm::RecordRejection(int client) {
  const int64_t count = client_pool_ == nullptr
                            ? ++rejection_counts_[static_cast<size_t>(client)]
                            : ++sparse_rejections_[client];
  // Lazily registered per-client gauge: the CSV column appears only once
  // a client has actually been rejected, so clean-run CSVs are unchanged.
  obs::MetricsRegistry::Get()
      .GetGauge("fl.rejections.c" + std::to_string(client))
      ->Set(static_cast<double>(count));
}

bool FederatedAlgorithm::ValidateUpdate(int client, const Tensor& state,
                                        const Tensor& uploaded) {
  if (!config_.robust.validate) return true;
  if (AllFinite(state) && AllFinite(uploaded)) return true;
  m_quarantined_->Increment();
  RecordRejection(client);
  return false;
}

bool FederatedAlgorithm::ScreenMap(int client, const Tensor& map) {
  if (!config_.robust.validate || AllFinite(map)) return true;
  m_quarantined_maps_->Increment();
  RecordRejection(client);
  return false;
}

void FederatedAlgorithm::EnsureScratchModels(size_t n) {
  while (scratch_models_.size() < n) {
    // Initialization values are irrelevant: every use loads a full state
    // first. A fixed private seed keeps construction deterministic
    // without touching the training RNG.
    Rng init_rng(0x5c7a7c6d0de15ULL + scratch_models_.size());
    scratch_models_.push_back(model_factory_(&init_rng));
  }
}

void FederatedAlgorithm::TrainCohort(int round, const std::vector<int>& cohort,
                                     bool want_start_losses,
                                     std::vector<ClientWork>* work) {
  const int n = static_cast<int>(cohort.size());
  work->assign(cohort.size(), ClientWork{});
  const bool pipelined_remote = UseRemotePipelined(cohort.size());
  // Phase A — broadcasts + virtual-duration draws, sequentially in cohort
  // order: the fault channel's RNG stream must be consumed in a
  // deterministic order, and compute draws are cheap.
  for (int i = 0; i < n; ++i) {
    // Per-client span (not per-phase-A-pass) so the "broadcast" count is
    // the same on the parallel and sequential round paths.
    obs::TraceSpan trace_span("broadcast");
    ClientWork& w = (*work)[static_cast<size_t>(i)];
    w.client = cohort[static_cast<size_t>(i)];
    // Pool mode: pin this client's view/batcher now, on the main thread,
    // so the phase-B workers below only ever read the caches.
    EnsureClientMaterialized(w.client);
    w.trained = ChargeModelDownload();  // broadcast lost: client sits out
    w.down_ms = network_model_.DownMs(model_bytes_) +
                channel_.last_latency_ms();
    w.compute_ms =
        compute_model_->SampleMs(w.client, round, LocalSteps(w.client));
    if (pipelined_remote && w.trained) {
      // Round pipelining: ship the job as soon as its broadcast clears,
      // so workers train while the server is still broadcasting to (and
      // later collecting from) the rest of the cohort.
      train_executor_->Submit(round, w.client, global_state_,
                              EncodeTrainContextFor(round, w.client),
                              EncodeBatcherBaseFor(w.client));
      SkipLocalBatches(w.client);
    }
  }
  // Phase B — local training. The parallel and sequential paths are
  // bit-identical: each client's randomness lives in its own batcher
  // stream, models draw nothing after construction, and hooks that run
  // here (ExtraLoss, PostBackward) only read shared state.
  const auto train_one = [&](int i, FeatureModel* model) {
    ClientWork& w = (*work)[static_cast<size_t>(i)];
    if (!w.trained) return;
    obs::TraceSpan trace_span("local_train");
    if (want_start_losses) {
      w.start_loss = EvaluateLocalLoss(w.client, global_state_, model);
    }
    auto [state, loss] = DispatchTrain(round, w.client, global_state_, model,
                                       pipelined_remote);
    w.state = std::move(state);
    w.loss = loss;
  };
  if (UseParallelPath(cohort.size())) {
    EnsureScratchModels(cohort.size());
    pool_->ParallelFor(n, [&](int i) {
      train_one(i, scratch_models_[static_cast<size_t>(i)].get());
    });
  } else {
    for (int i = 0; i < n; ++i) train_one(i, model_.get());
  }
}

bool FederatedAlgorithm::UseParallelPath(size_t cohort_size) const {
  // Remote execution collects on the main thread (TrainExecutor is not
  // thread-safe); pipelined executors get their concurrency from the
  // workers instead.
  return train_executor_ == nullptr && pool_ != nullptr &&
         pool_->num_threads() > 1 && cohort_size > 1 &&
         SupportsParallelTraining();
}

bool FederatedAlgorithm::UseRemotePipelined(size_t cohort_size) const {
  return train_executor_ != nullptr && train_executor_->pipelined() &&
         cohort_size > 1 && SupportsParallelTraining() &&
         !config_.fault.enabled();
}

bool FederatedAlgorithm::StreamingEligible() const {
  // Streaming replaces the Aggregate call with a running tree fold, so it
  // is only sound for algorithms on the default FedAvg mean with no
  // cohort-wide inputs (robust rules and start losses need every update
  // in hand). The async policy has its own buffered accumulation.
  return config_.stream_chunk > 0 && config_.robust.mean() &&
         SupportsStreamingAggregation() && !RequiresStartLosses() &&
         config_.sim.mode != SimMode::kAsync;
}

RoundResult FederatedAlgorithm::RunRound(int round) {
  comm_.BeginRound();
  channel_.BeginRound();
  if (config_.sim.mode == SimMode::kAsync) return RunRoundAsync(round);
  return RunRoundBarrier(round);
}

RoundResult FederatedAlgorithm::RunRoundBarrier(int round) {
  Stopwatch watch;
  const double t0 = clock_.now_ms();
  std::vector<int> selected;
  {
    obs::TraceSpan trace_span("select");
    selected = SampleClients();
    // Straggler fault injection: drop sampled clients with the configured
    // probability, keeping at least one. Dropped clients still cost the
    // server a model download (they failed *after* receiving it).
    if (config_.dropout_prob > 0.0) {
      std::vector<int> kept;
      for (int k : selected) {
        if (rng_.Uniform() < config_.dropout_prob) {
          ChargeModelDownload();  // wasted transfer
        } else {
          kept.push_back(k);
        }
      }
      if (kept.empty()) kept.push_back(selected[0]);
      selected = std::move(kept);
    }
  }
  OnRoundStart(round, selected);

  const bool deadline_mode = config_.sim.mode == SimMode::kDeadline;
  const bool want_start_losses = RequiresStartLosses();
  // Streaming rounds fold every surviving update straight into an
  // O(log n) tree accumulator and never materialize new_states; on a
  // fault-free channel the result is bit-identical to the all-at-once
  // sharded round (the channel consumes no RNG, compute draws are keyed
  // per (client, round), and compression forks stay in cohort order).
  const bool streaming = StreamingEligible();
  StreamingTreeSum stream_acc;
  double stream_weight = 0.0;

  // Dropout-tolerant round: a client whose model download is lost never
  // trains; a client whose upload is lost — or, in deadline mode, beats
  // the fault lottery but misses the cut — trains for nothing. Only the
  // survivors are aggregated, with weights renormalized over that set.
  std::vector<int> survivors;
  std::vector<Tensor> new_states;
  std::vector<double> start_losses;
  survivors.reserve(selected.size());
  new_states.reserve(selected.size());
  std::vector<double> completions;
  double trained_weight = 0.0, trained_loss = 0.0;
  double max_completion = 0.0;
  int cut = 0;

  // Finishes one client in cohort order on both paths: upload, virtual
  // completion time, deadline cut, survivor bookkeeping.
  const auto finish = [&](ClientWork& w) {
    if (!w.trained) {
      // A lost broadcast still occupies the round until its (re)attempts
      // give up; the server cannot tell a dead client from a slow one.
      max_completion = std::max(max_completion, w.down_ms);
      return;
    }
    RecordLoss(w.client, w.loss);
    // The weighted mean training loss covers every client that trained,
    // whether or not its update made it back.
    const double pw = client_weight(w.client);
    trained_weight += pw;
    trained_loss += pw * w.loss;
    // An adversarial client reports a corrupted update in place of its
    // honest trained state (identity for honest clients and clean runs).
    // global_state_ is still the round-start model here: aggregation
    // happens only after every client finished.
    if (adversary_.CorruptsUpdates()) {
      w.state =
          adversary_.CorruptUpdate(w.client, round, global_state_, w.state);
    }
    bool delivered = true;
    Tensor uploaded = [&] {
      obs::TraceSpan trace_span("upload");
      return CompressUploadedState(w.state, &delivered);
    }();
    const int64_t up_bytes = compression_enabled_
                                 ? compressor_->WireBytes(w.state.size())
                                 : model_bytes_;
    const double completion = w.down_ms + w.compute_ms +
                              network_model_.UpMs(up_bytes) +
                              channel_.last_latency_ms();
    completions.push_back(completion);
    max_completion = std::max(max_completion, completion);
    if (!delivered) return;  // update lost in flight
    if (deadline_mode && completion > config_.sim.deadline_ms) {
      ++cut;  // arrived after the cut: the work and bytes were wasted
      StragglersCutCounter()->Increment();
      return;
    }
    // Server-side validation: a non-finite update is quarantined here,
    // before it can reach the aggregator, SCAFFOLD's control-variate
    // refresh, or the rFedAvg map computation.
    if (!ValidateUpdate(w.client, w.state, uploaded)) return;
    OnClientTrained(round, w.client, w.state);
    survivors.push_back(w.client);
    if (streaming) {
      // Fold now; the update is never buffered. Leaf scaling and the
      // weight accumulation mirror the sharded Aggregate exactly.
      const double wgt = client_weight(w.client);
      stream_weight += wgt;
      Tensor leaf = std::move(uploaded);
      leaf.MulInPlace(static_cast<float>(wgt));
      stream_acc.Push(std::move(leaf));
    } else {
      new_states.push_back(std::move(uploaded));
    }
    if (want_start_losses) start_losses.push_back(w.start_loss);
  };

  // Streaming rounds walk the cohort in chunks of stream_chunk clients
  // (train a chunk, fold it, move on); otherwise the whole cohort is one
  // chunk and the flow below is the original round, byte for byte.
  const size_t total = selected.size();
  const size_t chunk_size =
      streaming ? static_cast<size_t>(config_.stream_chunk) : total;
  for (size_t begin = 0; begin < total; begin += chunk_size) {
    const size_t end = std::min(begin + chunk_size, total);
    const std::vector<int> cohort(selected.begin() + static_cast<int64_t>(begin),
                                  selected.begin() + static_cast<int64_t>(end));
    if (UseParallelPath(cohort.size()) || UseRemotePipelined(cohort.size())) {
      std::vector<ClientWork> work;
      TrainCohort(round, cohort, want_start_losses, &work);
      for (ClientWork& w : work) finish(w);
    } else {
      // Sequential interleaved loop, matching the pre-sim simulator
      // operation-for-operation (and RNG-draw-for-draw): SCAFFOLD's
      // OnClientTrained updates server state that later clients' training
      // in the same round observes.
      for (int k : cohort) {
        ClientWork w;
        w.client = k;
        {
          obs::TraceSpan trace_span("broadcast");
          w.trained = ChargeModelDownload();  // broadcast lost: sits out
          w.down_ms =
              network_model_.DownMs(model_bytes_) + channel_.last_latency_ms();
          w.compute_ms = compute_model_->SampleMs(k, round, LocalSteps(k));
        }
        if (w.trained) {
          obs::TraceSpan trace_span("local_train");
          if (want_start_losses) {
            w.start_loss = EvaluateLocalLoss(k, global_state_);
          }
          auto [state, loss] = DispatchTrain(round, k, global_state_, nullptr,
                                             /*already_submitted=*/false);
          w.state = std::move(state);
          w.loss = loss;
        }
        finish(w);
      }
    }
  }

  if (!survivors.empty()) {
    obs::TraceSpan trace_span("aggregate");
    if (streaming) {
      RFED_CHECK_GT(stream_weight, 0.0);
      Tensor next = stream_acc.Finish();
      next.MulInPlace(static_cast<float>(1.0 / stream_weight));
      if (m_shard_count_ != nullptr) {
        m_shard_count_->Set(static_cast<double>(
            ShardCount(static_cast<int64_t>(survivors.size()),
                       config_.shard_fanout)));
        m_agg_peak_bytes_->Set(static_cast<double>(stream_acc.peak_bytes()));
      }
      global_state_ = std::move(next);
    } else {
      Aggregate(round, survivors, new_states, start_losses);
    }
    ++server_version_;
  }
  // If every update was lost the server keeps w_{t+1} = w_t.
  OnRoundEnd(round, survivors);

  // Round duration: sync waits for the slowest client; deadline closes at
  // the cut unless everything (including lost transfers the server is
  // still waiting on) finished earlier.
  double duration = max_completion;
  if (deadline_mode && survivors.size() != selected.size()) {
    duration = config_.sim.deadline_ms;
  }
  if (deadline_mode) duration = std::min(duration, config_.sim.deadline_ms);
  clock_.AdvanceTo(t0 + duration);

  RoundResult result;
  result.train_loss =
      trained_weight > 0.0 ? trained_loss / trained_weight : 0.0;
  result.seconds = watch.ElapsedSeconds();
  result.virtual_ms = duration;
  result.client_p50_ms = PercentileMs(completions, 0.50);
  result.client_p95_ms = PercentileMs(completions, 0.95);
  result.stragglers_cut = cut;
  return result;
}

RoundResult FederatedAlgorithm::RunRoundAsync(int round) {
  Stopwatch watch;
  const double t0 = clock_.now_ms();
  const int n = num_clients();
  int cohort = static_cast<int>(std::lround(config_.sample_ratio * n));
  cohort = std::clamp(cohort, 1, n);
  const int buffer = std::clamp(config_.sim.async_buffer, 1, cohort);

  // Refill the concurrency target: dispatch fresh work to idle clients so
  // that `cohort` clients are training/in flight at once. Sampling is
  // uniform over the idle set (loss-adaptive selection would bias toward
  // clients whose losses are stalest here). dropout_prob applies at
  // dispatch; a dropped client wastes its broadcast and stays idle.
  std::vector<int> fresh;
  {
    obs::TraceSpan trace_span("select");
    std::vector<int> idle;
    for (int k = 0; k < n; ++k) {
      if (!client_busy_[static_cast<size_t>(k)]) idle.push_back(k);
    }
    const int busy = n - static_cast<int>(idle.size());
    if (cohort > busy && !idle.empty()) {
      const int take =
          std::min(cohort - busy, static_cast<int>(idle.size()));
      for (int pick :
           UniformSelection(static_cast<int>(idle.size()), take, &rng_)) {
        fresh.push_back(idle[static_cast<size_t>(pick)]);
      }
    }
    if (config_.dropout_prob > 0.0) {
      std::vector<int> kept;
      for (int k : fresh) {
        if (rng_.Uniform() < config_.dropout_prob) {
          ChargeModelDownload();  // wasted transfer
        } else {
          kept.push_back(k);
        }
      }
      fresh = std::move(kept);
    }
  }
  OnRoundStart(round, fresh);

  const bool want_start_losses = RequiresStartLosses();
  std::vector<ClientWork> work;
  TrainCohort(round, fresh, want_start_losses, &work);

  // Dispatch: each trained client's update enters the event queue as an
  // arrival at now + download + compute + upload.
  for (ClientWork& w : work) {
    if (!w.trained) continue;
    RecordLoss(w.client, w.loss);
    // Adversarial corruption at dispatch: global_state_ is the model
    // this client downloaded (the server has not aggregated yet).
    if (adversary_.CorruptsUpdates()) {
      w.state =
          adversary_.CorruptUpdate(w.client, round, global_state_, w.state);
    }
    InFlight flight;
    flight.client = w.client;
    flight.version = server_version_;
    flight.loss = w.loss;
    flight.start_loss = w.start_loss;
    {
      obs::TraceSpan trace_span("upload");
      flight.uploaded = CompressUploadedState(w.state, &flight.delivered);
    }
    flight.state = std::move(w.state);
    const int64_t up_bytes = compression_enabled_
                                 ? compressor_->WireBytes(flight.state.size())
                                 : model_bytes_;
    flight.completion_ms = w.down_ms + w.compute_ms +
                           network_model_.UpMs(up_bytes) +
                           channel_.last_latency_ms();
    const int64_t id = queue_.Push(clock_.now_ms() + flight.completion_ms,
                                   w.client, 0);
    in_flight_.emplace(id, std::move(flight));
    client_busy_[static_cast<size_t>(w.client)] = 1;
  }

  // Collect: pop arrivals in virtual-time order, advancing the clock,
  // until `buffer` delivered updates are in hand (or nothing is left in
  // flight — lost uploads free their clients but fill no buffer slot).
  std::vector<int> survivors;
  std::vector<Tensor> new_states;
  std::vector<double> start_losses;
  std::vector<double> scales;
  std::vector<double> completions;
  double trained_weight = 0.0, trained_loss = 0.0;
  double staleness_sum = 0.0;
  while (static_cast<int>(survivors.size()) < buffer && !queue_.empty()) {
    const SimEvent event = queue_.Pop();
    clock_.AdvanceTo(event.time_ms);
    auto it = in_flight_.find(event.seq);
    RFED_CHECK(it != in_flight_.end());
    InFlight flight = std::move(it->second);
    in_flight_.erase(it);
    client_busy_[static_cast<size_t>(flight.client)] = 0;
    if (!flight.delivered) continue;  // upload lost in flight
    // Quarantined updates free their client but, like lost uploads,
    // fill no buffer slot and never reach the server state.
    if (!ValidateUpdate(flight.client, flight.state, flight.uploaded)) {
      continue;
    }
    const int staleness = server_version_ - flight.version;
    staleness_sum += static_cast<double>(staleness);
    StalenessHistogram()->Observe(static_cast<double>(staleness));
    completions.push_back(flight.completion_ms);
    const double pw = client_weight(flight.client);
    trained_weight += pw;
    trained_loss += pw * flight.loss;
    OnClientTrained(round, flight.client, flight.state);
    survivors.push_back(flight.client);
    new_states.push_back(std::move(flight.uploaded));
    if (want_start_losses) start_losses.push_back(flight.start_loss);
    scales.push_back(1.0 / (1.0 + static_cast<double>(staleness)));
  }

  if (!survivors.empty()) {
    obs::TraceSpan trace_span("aggregate");
    agg_scale_ = std::move(scales);
    Aggregate(round, survivors, new_states, start_losses);
    agg_scale_.clear();
    ++server_version_;
  }
  OnRoundEnd(round, survivors);

  RoundResult result;
  result.train_loss =
      trained_weight > 0.0 ? trained_loss / trained_weight : 0.0;
  result.seconds = watch.ElapsedSeconds();
  result.virtual_ms = clock_.now_ms() - t0;
  result.client_p50_ms = PercentileMs(completions, 0.50);
  result.client_p95_ms = PercentileMs(completions, 0.95);
  result.mean_staleness =
      survivors.empty()
          ? 0.0
          : staleness_sum / static_cast<double>(survivors.size());
  return result;
}

void FederatedAlgorithm::SaveRunState(std::vector<uint8_t>* out) const {
  // A checkpoint is a *round boundary* snapshot. The async policy leaves
  // updates travelling between rounds, and an InFlight (event-queue
  // position, staleness base, pending tensors) has no meaningful
  // restoration into a fresh event queue — so it cannot checkpoint
  // mid-flight.
  RFED_CHECK(in_flight_.empty())
      << "cannot checkpoint an async run with updates still in flight";
  CheckpointWriter w(out);
  w.WriteString(name_);
  // Pool-mode checkpoints are sparse: only the clients materialized so
  // far have any state worth saving (everything else is re-derivable
  // from the pool seed). A magic word keeps the two formats from being
  // confused, and the saved client count pins the pool geometry.
  if (pool_mode()) {
    w.WriteU32(kPoolStateMagic);
    w.WriteI32(num_clients());
  }
  w.WriteTensor(global_state_);
  w.WriteRng(rng_.SaveState());
  if (pool_mode()) {
    std::vector<int> ids;
    ids.reserve(lazy_batchers_.size());
    for (const auto& [id, batcher] : lazy_batchers_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    w.WriteU32(static_cast<uint32_t>(ids.size()));
    for (int id : ids) {
      w.WriteI32(id);
      const BatcherState s = lazy_batchers_.at(id).SaveState();
      w.WriteU32(static_cast<uint32_t>(s.indices.size()));
      for (int index : s.indices) w.WriteI32(index);
      w.WriteU64(s.cursor);
      w.WriteRng(s.rng);
    }
  } else {
    w.WriteU32(static_cast<uint32_t>(batchers_.size()));
    for (const Batcher& b : batchers_) {
      const BatcherState s = b.SaveState();
      w.WriteU32(static_cast<uint32_t>(s.indices.size()));
      for (int index : s.indices) w.WriteI32(index);
      w.WriteU64(s.cursor);
      w.WriteRng(s.rng);
    }
  }
  const ChannelState ch = channel_.SaveState();
  w.WriteRng(ch.rng);
  w.WriteI64(ch.stats.delivered);
  w.WriteI64(ch.stats.dropped);
  w.WriteI64(ch.stats.retried);
  w.WriteI64(ch.stats.corrupted);
  w.WriteI64(ch.stats.duplicated);
  w.WriteI64(ch.stats.timed_out);
  w.WriteDouble(ch.last_latency_ms);
  w.WriteI64(comm_.total_down_bytes());
  w.WriteI64(comm_.total_up_bytes());
  w.WriteI64(comm_.down_messages());
  w.WriteI64(comm_.up_messages());
  w.WriteI64(comm_.wire_overhead_bytes());
  if (pool_mode()) {
    std::vector<int> loss_ids;
    loss_ids.reserve(sparse_losses_.size());
    for (const auto& [id, loss] : sparse_losses_) loss_ids.push_back(id);
    std::sort(loss_ids.begin(), loss_ids.end());
    w.WriteU32(static_cast<uint32_t>(loss_ids.size()));
    for (int id : loss_ids) {
      w.WriteI32(id);
      w.WriteDouble(sparse_losses_.at(id));
    }
  } else {
    w.WriteU32(static_cast<uint32_t>(last_losses_.size()));
    for (double loss : last_losses_) w.WriteDouble(loss);
  }
  w.WriteDouble(clock_.now_ms());
  w.WriteI32(server_version_);
  if (pool_mode()) {
    std::vector<int> rej_ids;
    rej_ids.reserve(sparse_rejections_.size());
    for (const auto& [id, count] : sparse_rejections_) rej_ids.push_back(id);
    std::sort(rej_ids.begin(), rej_ids.end());
    w.WriteU32(static_cast<uint32_t>(rej_ids.size()));
    for (int id : rej_ids) {
      w.WriteI32(id);
      w.WriteI64(sparse_rejections_.at(id));
    }
  } else {
    w.WriteU32(static_cast<uint32_t>(rejection_counts_.size()));
    for (int64_t count : rejection_counts_) w.WriteI64(count);
  }
  SaveExtraState(&w);
}

void FederatedAlgorithm::LoadRunState(const std::vector<uint8_t>& blob) {
  CheckpointReader r(blob);
  const std::string saved_name = r.ReadString();
  RFED_CHECK(saved_name == name_)
      << "checkpoint is for algorithm '" << saved_name << "', not '"
      << name_ << "'";
  if (pool_mode()) {
    RFED_CHECK_EQ(r.ReadU32(), kPoolStateMagic)
        << "checkpoint was not written by a pool-mode run";
    const int saved_clients = r.ReadI32();
    RFED_CHECK_EQ(saved_clients, num_clients())
        << "checkpoint is for a pool of " << saved_clients << " clients";
    // Re-materialization below rebuilds exactly the saved sparse state.
    lazy_views_.clear();
    lazy_batchers_.clear();
    lazy_state_bytes_ = 0;
    sparse_losses_.clear();
    sparse_rejections_.clear();
  }
  Tensor state = r.ReadTensor();
  RFED_CHECK_EQ(state.size(), global_state_.size())
      << "checkpointed model has a different parameter count";
  global_state_ = std::move(state);
  rng_.LoadState(r.ReadRng());
  if (pool_mode()) {
    const uint32_t num_saved = r.ReadU32();
    for (uint32_t i = 0; i < num_saved; ++i) {
      const int id = r.ReadI32();
      RFED_CHECK(id >= 0 && id < num_clients())
          << "checkpoint names client id " << id << " outside the pool of "
          << num_clients() << " clients";
      BatcherState s;
      const uint32_t num_indices = r.ReadU32();
      s.indices.reserve(num_indices);
      for (uint32_t j = 0; j < num_indices; ++j) {
        s.indices.push_back(r.ReadI32());
      }
      s.cursor = r.ReadU64();
      s.rng = r.ReadRng();
      // Rebuild the view/batcher from the pool, then restore the saved
      // cursor/rng; Batcher::LoadState aborts if the checkpoint's index
      // multiset disagrees with this pool's (wrong seed or geometry).
      EnsureClientMaterialized(id);
      lazy_batchers_.at(id).LoadState(s);
    }
  } else {
    const uint32_t num_batchers = r.ReadU32();
    RFED_CHECK_EQ(num_batchers, batchers_.size())
        << "checkpoint is for a different client count";
    for (Batcher& b : batchers_) {
      BatcherState s;
      const uint32_t num_indices = r.ReadU32();
      s.indices.reserve(num_indices);
      for (uint32_t i = 0; i < num_indices; ++i) {
        s.indices.push_back(r.ReadI32());
      }
      s.cursor = r.ReadU64();
      s.rng = r.ReadRng();
      b.LoadState(s);
    }
  }
  ChannelState ch;
  ch.rng = r.ReadRng();
  ch.stats.delivered = r.ReadI64();
  ch.stats.dropped = r.ReadI64();
  ch.stats.retried = r.ReadI64();
  ch.stats.corrupted = r.ReadI64();
  ch.stats.duplicated = r.ReadI64();
  ch.stats.timed_out = r.ReadI64();
  ch.last_latency_ms = r.ReadDouble();
  channel_.LoadState(ch);
  const int64_t down_bytes = r.ReadI64();
  const int64_t up_bytes = r.ReadI64();
  const int64_t down_msgs = r.ReadI64();
  const int64_t up_msgs = r.ReadI64();
  const int64_t wire_overhead = r.ReadI64();
  comm_.Restore(down_bytes, up_bytes, down_msgs, up_msgs, wire_overhead);
  if (pool_mode()) {
    const uint32_t num_losses = r.ReadU32();
    for (uint32_t i = 0; i < num_losses; ++i) {
      const int id = r.ReadI32();
      RFED_CHECK(id >= 0 && id < num_clients())
          << "checkpoint names client id " << id << " outside the pool of "
          << num_clients() << " clients";
      sparse_losses_[id] = r.ReadDouble();
    }
  } else {
    const uint32_t num_losses = r.ReadU32();
    RFED_CHECK_EQ(num_losses, last_losses_.size())
        << "checkpoint is for a different client count";
    for (double& loss : last_losses_) loss = r.ReadDouble();
  }
  clock_.AdvanceTo(r.ReadDouble());
  server_version_ = r.ReadI32();
  if (pool_mode()) {
    const uint32_t num_rejections = r.ReadU32();
    for (uint32_t i = 0; i < num_rejections; ++i) {
      const int id = r.ReadI32();
      RFED_CHECK(id >= 0 && id < num_clients())
          << "checkpoint names client id " << id << " outside the pool of "
          << num_clients() << " clients";
      sparse_rejections_[id] = r.ReadI64();
      if (sparse_rejections_[id] > 0) {
        obs::MetricsRegistry::Get()
            .GetGauge("fl.rejections.c" + std::to_string(id))
            ->Set(static_cast<double>(sparse_rejections_[id]));
      }
    }
  } else {
    const uint32_t num_rejections = r.ReadU32();
    RFED_CHECK_EQ(num_rejections, rejection_counts_.size())
        << "checkpoint is for a different client count";
    for (size_t k = 0; k < rejection_counts_.size(); ++k) {
      rejection_counts_[k] = r.ReadI64();
      // Re-publish nonzero reputations so the resumed run's CSV has the
      // same gauge columns as the uninterrupted one.
      if (rejection_counts_[k] > 0) {
        obs::MetricsRegistry::Get()
            .GetGauge("fl.rejections.c" + std::to_string(k))
            ->Set(static_cast<double>(rejection_counts_[k]));
      }
    }
  }
  LoadExtraState(&r);
  RFED_CHECK(r.AtEnd()) << "trailing bytes in checkpointed algorithm state";
  // Round-scoped bookkeeping: a checkpoint is always at a round boundary,
  // so nothing is in flight and no client is busy.
  in_flight_.clear();
  std::fill(client_busy_.begin(), client_busy_.end(), 0);
  agg_scale_.clear();
}

}  // namespace rfed
