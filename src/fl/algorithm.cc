#include "fl/algorithm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fl/model_state.h"
#include "fl/selection.h"
#include "nn/loss.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace rfed {

FederatedAlgorithm::FederatedAlgorithm(std::string name, const FlConfig& config,
                                       const Dataset* train_data,
                                       std::vector<ClientView> clients,
                                       const ModelFactory& model_factory)
    : name_(std::move(name)),
      config_(config),
      train_data_(train_data),
      clients_(std::move(clients)),
      rng_(config.seed),
      // The channel draws from its own stream so that enabling faults
      // never perturbs sampling/batching/init randomness.
      channel_(config.fault, config.seed ^ 0xfa171c4a11e1ULL, &comm_) {
  RFED_CHECK(train_data_ != nullptr);
  RFED_CHECK(!clients_.empty());

  // FedAvg weights p_k = n_k / n.
  int64_t total = 0;
  for (const auto& c : clients_) {
    RFED_CHECK(!c.train_indices.empty());
    total += static_cast<int64_t>(c.train_indices.size());
  }
  weights_.reserve(clients_.size());
  for (const auto& c : clients_) {
    weights_.push_back(static_cast<double>(c.train_indices.size()) /
                       static_cast<double>(total));
  }

  Rng init_rng = rng_.Fork();
  model_ = model_factory(&init_rng);
  global_state_ = FlattenParameters(model_->Parameters());
  model_bytes_ = StateBytes(model_->Parameters());

  batchers_.reserve(clients_.size());
  for (const auto& c : clients_) {
    batchers_.emplace_back(train_data_, c.train_indices, config_.batch_size,
                           rng_.Fork());
  }

  compressor_ = MakeCompressor(config_.upload_compressor);
  compression_enabled_ = config_.upload_compressor != "none";
  last_losses_.assign(clients_.size(),
                      std::numeric_limits<double>::quiet_NaN());
}

FeatureModel* FederatedAlgorithm::GlobalModel() {
  LoadParameters(global_state_, model_->Parameters());
  return model_.get();
}

std::vector<int> FederatedAlgorithm::SampleClients() {
  const int n = num_clients();
  int k = static_cast<int>(std::lround(config_.sample_ratio * n));
  k = std::clamp(k, 1, n);
  if (config_.client_selection == "loss" && k < n) {
    return LossProportionalSelection(last_losses_, k, &rng_);
  }
  return UniformSelection(n, k, &rng_);
}

Tensor FederatedAlgorithm::CompressUploadedState(const Tensor& state,
                                                 bool* delivered) {
  if (!compression_enabled_) {
    const bool ok = ChargeModelUpload();
    if (delivered != nullptr) *delivered = ok;
    return state;
  }
  Tensor delta = state;
  delta.SubInPlace(global_state_);
  Rng fork = rng_.Fork();
  Tensor reconstructed = compressor_->RoundTrip(delta, &fork);
  reconstructed.AddInPlace(global_state_);
  const bool ok = channel_.Upload(compressor_->WireBytes(state.size()));
  if (delivered != nullptr) *delivered = ok;
  return reconstructed;
}

std::vector<int> FederatedAlgorithm::CappedIndices(int client) const {
  const auto& all = clients_[static_cast<size_t>(client)].train_indices;
  const int64_t cap = config_.max_examples_per_pass;
  if (cap <= 0 || static_cast<int64_t>(all.size()) <= cap) return all;
  // Deterministic per-client subsample: stable stride over the index list.
  std::vector<int> out;
  out.reserve(static_cast<size_t>(cap));
  const double stride =
      static_cast<double>(all.size()) / static_cast<double>(cap);
  for (int64_t i = 0; i < cap; ++i) {
    out.push_back(all[static_cast<size_t>(
        std::min<double>(i * stride, static_cast<double>(all.size() - 1)))]);
  }
  return out;
}

std::pair<Tensor, double> FederatedAlgorithm::LocalTrain(
    int round, int client, const Tensor& init_state) {
  auto params = Params();
  LoadParameters(init_state, params);
  auto optimizer = MakeOptimizer(config_.optimizer, params, config_.lr);
  Batcher& batcher = batchers_[static_cast<size_t>(client)];

  const int steps = LocalSteps(client);
  double loss_sum = 0.0;
  for (int step = 0; step < steps; ++step) {
    Batch batch = batcher.Next();
    ModelOutput out = model_->Forward(batch);
    Variable loss = CrossEntropyLoss(out.logits, batch.labels);
    Variable extra = ExtraLoss(client, out, batch);
    if (extra.valid()) loss = ag::Add(loss, extra);
    optimizer->ZeroGrad();
    loss.Backward();
    PostBackward(client);
    optimizer->Step();
    loss_sum += static_cast<double>(loss.value().ToScalar());
  }
  return {FlattenParameters(params), loss_sum / static_cast<double>(steps)};
}

double FederatedAlgorithm::EvaluateLocalLoss(int client, const Tensor& state) {
  auto params = Params();
  LoadParameters(state, params);
  const std::vector<int> indices = CappedIndices(client);
  Batch batch = train_data_->GetBatch(indices);
  ModelOutput out = model_->Forward(batch);
  Variable loss = CrossEntropyLoss(out.logits, batch.labels);
  return static_cast<double>(loss.value().ToScalar());
}

Tensor FederatedAlgorithm::ComputeClientDelta(int client, const Tensor& state,
                                              bool use_logits) {
  auto params = Params();
  LoadParameters(state, params);
  const std::vector<int> indices = CappedIndices(client);
  Batch batch = train_data_->GetBatch(indices);
  ModelOutput out = model_->Forward(batch);
  return MeanRows(use_logits ? out.logits.value() : out.features.value());
}

bool FederatedAlgorithm::ChargeModelDownload() {
  return channel_.Download(model_bytes_);
}
bool FederatedAlgorithm::ChargeModelUpload() {
  return channel_.Upload(model_bytes_);
}

void FederatedAlgorithm::Aggregate(int round, const std::vector<int>& selected,
                                   const std::vector<Tensor>& new_states,
                                   const std::vector<double>& start_losses) {
  double weight_sum = 0.0;
  for (int k : selected) weight_sum += weights_[static_cast<size_t>(k)];
  RFED_CHECK_GT(weight_sum, 0.0);
  Tensor next(global_state_.shape());
  for (size_t i = 0; i < selected.size(); ++i) {
    const double w =
        weights_[static_cast<size_t>(selected[i])] / weight_sum;
    next.Axpy(static_cast<float>(w), new_states[i]);
  }
  global_state_ = std::move(next);
}

RoundResult FederatedAlgorithm::RunRound(int round) {
  comm_.BeginRound();
  channel_.BeginRound();
  Stopwatch watch;
  std::vector<int> selected = SampleClients();
  // Straggler fault injection: drop sampled clients with the configured
  // probability, keeping at least one. Dropped clients still cost the
  // server a model download (they failed *after* receiving it).
  if (config_.dropout_prob > 0.0) {
    std::vector<int> survivors;
    for (int k : selected) {
      if (rng_.Uniform() < config_.dropout_prob) {
        ChargeModelDownload();  // wasted transfer
      } else {
        survivors.push_back(k);
      }
    }
    if (survivors.empty()) survivors.push_back(selected[0]);
    selected = std::move(survivors);
  }
  OnRoundStart(round, selected);

  // Dropout-tolerant round: a client whose model download is lost never
  // trains; a client whose upload is lost trains for nothing. Only the
  // survivors — clients whose updates actually reached the server — are
  // aggregated, with weights renormalized over that set.
  std::vector<int> survivors;
  std::vector<Tensor> new_states;
  std::vector<double> start_losses;
  survivors.reserve(selected.size());
  new_states.reserve(selected.size());

  const bool want_start_losses = RequiresStartLosses();
  double trained_weight = 0.0, trained_loss = 0.0;
  for (int k : selected) {
    if (!ChargeModelDownload()) continue;  // broadcast lost: client sits out
    double start_loss = 0.0;
    if (want_start_losses) {
      start_loss = EvaluateLocalLoss(k, global_state_);
    }
    auto [state, loss] = LocalTrain(round, k, global_state_);
    last_losses_[static_cast<size_t>(k)] = loss;
    // The weighted mean training loss covers every client that trained,
    // whether or not its update made it back.
    const double w = weights_[static_cast<size_t>(k)];
    trained_weight += w;
    trained_loss += w * loss;
    bool delivered = true;
    Tensor uploaded = CompressUploadedState(state, &delivered);
    if (!delivered) continue;  // update lost in flight
    OnClientTrained(round, k, state);
    survivors.push_back(k);
    new_states.push_back(std::move(uploaded));
    if (want_start_losses) start_losses.push_back(start_loss);
  }

  if (!survivors.empty()) {
    Aggregate(round, survivors, new_states, start_losses);
  }
  // If every update was lost the server keeps w_{t+1} = w_t.
  OnRoundEnd(round, survivors);

  return RoundResult{trained_weight > 0.0 ? trained_loss / trained_weight
                                          : 0.0,
                     watch.ElapsedSeconds()};
}

}  // namespace rfed
