#ifndef RFED_FL_SCAFFOLD_H_
#define RFED_FL_SCAFFOLD_H_

#include "fl/algorithm.h"

namespace rfed {

/// SCAFFOLD (Karimireddy et al., ICML'20): stochastic controlled
/// averaging. Each client keeps a control variate c_k and the server a
/// global c; local gradients are corrected by (c - c_k), and after local
/// training c_k is refreshed with option II of the paper:
///   c_k+ = c_k - c + (x - y_k) / (E * lr).
/// The server aggregates models like FedAvg (global step eta_g = 1) and
/// updates c <- c + (|S|/N) * mean_{k in S}(c_k+ - c_k). Control variates
/// double the per-round communication, which the ledger charges.
class Scaffold : public FederatedAlgorithm {
 public:
  Scaffold(const FlConfig& config, const Dataset* train_data,
           std::vector<ClientView> clients, const ModelFactory& model_factory);

 protected:
  void OnRoundStart(int round, const std::vector<int>& selected) override;
  void PostBackward(int client,
                    const std::vector<Variable*>& params) override;
  void OnClientTrained(int round, int client, const Tensor& new_state) override;
  /// SCAFFOLD's incremental c refresh in OnClientTrained is visible to
  /// later clients of the same round, so training order matters: the
  /// parallel path would silently change the optimization.
  bool SupportsParallelTraining() const override { return false; }
  /// Checkpointing: the control variates are the algorithm's only state
  /// beyond the base class (round_start_state_ is round-scoped).
  void SaveExtraState(CheckpointWriter* writer) const override;
  void LoadExtraState(CheckpointReader* reader) override;
  /// Remote jobs ship the controls PostBackward reads: the *current* c
  /// (which OnClientTrained refreshes between same-round clients — the
  /// reason SCAFFOLD is order-dependent) and the client's c_k.
  void EncodeTrainContext(int round, int client,
                          CheckpointWriter* writer) const override;
  void DecodeTrainContext(int round, int client,
                          CheckpointReader* reader) override;

 private:
  Tensor round_start_state_;
  Tensor global_control_;               // c
  std::vector<Tensor> client_controls_; // c_k
};

}  // namespace rfed

#endif  // RFED_FL_SCAFFOLD_H_
