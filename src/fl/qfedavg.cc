#include "fl/qfedavg.h"

#include <cmath>

#include "util/check.h"

namespace rfed {

QFedAvg::QFedAvg(const FlConfig& config, double q, const Dataset* train_data,
                 std::vector<ClientView> clients,
                 const ModelFactory& model_factory)
    : FederatedAlgorithm("q-FedAvg", config, train_data, std::move(clients),
                         model_factory),
      q_(q) {
  RFED_CHECK_GE(q_, 0.0);
}

void QFedAvg::Aggregate(int round, const std::vector<int>& selected,
                        const std::vector<Tensor>& new_states,
                        const std::vector<double>& start_losses) {
  RFED_CHECK_EQ(start_losses.size(), selected.size());
  const double lipschitz = 1.0 / config().lr;

  Tensor numerator(global_state().shape());
  double denominator = 0.0;
  for (size_t i = 0; i < selected.size(); ++i) {
    // Delta_k = L (w_t - w_k).
    Tensor delta = global_state();
    delta.SubInPlace(new_states[i]);
    delta.MulInPlace(static_cast<float>(lipschitz));
    const double loss = std::max(start_losses[i], 1e-10);
    const double loss_pow_q = std::pow(loss, q_);
    const double loss_pow_qm1 = std::pow(loss, q_ - 1.0);
    const double delta_sq = static_cast<double>(delta.SquaredNorm());
    numerator.Axpy(static_cast<float>(loss_pow_q), delta);
    denominator += q_ * loss_pow_qm1 * delta_sq + lipschitz * loss_pow_q;
  }
  RFED_CHECK_GT(denominator, 0.0);
  Tensor next = global_state();
  next.Axpy(static_cast<float>(-1.0 / denominator), numerator);
  SetGlobalState(std::move(next));
}

}  // namespace rfed
