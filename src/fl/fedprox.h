#ifndef RFED_FL_FEDPROX_H_
#define RFED_FL_FEDPROX_H_

#include "fl/algorithm.h"

namespace rfed {

/// FedProx (Li et al., MLSys'20): FedAvg plus a proximal term
/// (mu/2)||w - w_global||^2 in every local objective, implemented as a
/// gradient correction mu * (w - w_global) after backward. FedProx was
/// designed for partial participation, and that is exactly what the
/// fault channel produces: aggregation runs over the round's survivors
/// with renormalized weights, no special handling needed here.
class FedProx : public FederatedAlgorithm {
 public:
  FedProx(const FlConfig& config, double mu, const Dataset* train_data,
          std::vector<ClientView> clients, const ModelFactory& model_factory);

  double mu() const { return mu_; }

 protected:
  void OnRoundStart(int round, const std::vector<int>& selected) override;
  void PostBackward(int client,
                    const std::vector<Variable*>& params) override;
  /// Remote jobs carry no extra payload: the proximal anchor w_t IS the
  /// broadcast init state, so the worker replica re-derives it from the
  /// installed global state.
  void DecodeTrainContext(int round, int client,
                          CheckpointReader* reader) override;

 private:
  double mu_;
  Tensor round_start_state_;
};

}  // namespace rfed

#endif  // RFED_FL_FEDPROX_H_
