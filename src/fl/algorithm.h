#ifndef RFED_FL_ALGORITHM_H_
#define RFED_FL_ALGORITHM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/batcher.h"
#include "data/client_pool.h"
#include "fl/adversary.h"
#include "fl/channel.h"
#include "fl/comm.h"
#include "fl/compression.h"
#include "fl/types.h"
#include "nn/models.h"
#include "obs/metrics.h"
#include "sim/clock.h"
#include "sim/compute_model.h"
#include "sim/event_queue.h"
#include "sim/network_model.h"
#include "util/thread_pool.h"

namespace rfed {

class CheckpointWriter;
class CheckpointReader;

/// Seed lineage of pool-mode (lazy) per-client batcher streams: client
/// k's batcher RNG is Rng(MixSeed(config.seed, kPoolBatcherLineage, k)),
/// a pure function of the config seed — independent of when, or in which
/// order, clients are materialized. Public so the differential tests can
/// reconstruct the exact stream.
inline constexpr uint64_t kPoolBatcherLineage = 0xba7c4e55eedull;

/// Seam between the round loop and wherever local training actually
/// runs. Without an executor the loop calls LocalTrain in process; the
/// serve layer (src/serve/) installs a RemoteExecutor that ships each
/// job to an rfed_worker process over TCP. Submit hands over (round,
/// client, broadcast init state, algorithm context blob); Collect
/// returns that client's trained flat state and mean local loss. The
/// round loop submits and collects in cohort order, so an
/// implementation may treat each destination's jobs as a FIFO. When
/// pipelined() is true the loop submits a whole cohort before
/// collecting anything (workers train concurrently, broadcast of later
/// jobs overlaps the upload tail of earlier ones); otherwise Submit and
/// Collect strictly alternate, matching the sequential in-process path
/// operation-for-operation.
class TrainExecutor {
 public:
  virtual ~TrainExecutor() = default;
  /// `batcher_base` is the client's batcher-stream snapshot at the job's
  /// start (EncodeBatcherBaseFor, taken before the server's Skip()
  /// mirror), so the job is self-contained: any replica can execute it
  /// without having tracked the client's stream in lockstep — the
  /// property that makes reassigning a dead worker's jobs sound.
  virtual void Submit(int round, int client, const Tensor& init_state,
                      const std::vector<uint8_t>& context,
                      const std::vector<uint8_t>& batcher_base) = 0;
  virtual std::pair<Tensor, double> Collect(int round, int client) = 0;
  virtual bool pipelined() const { return false; }
};

/// Result of one communication round.
struct RoundResult {
  double train_loss = 0.0;   ///< weighted mean local training loss
  double seconds = 0.0;      ///< wall time spent in local computation
  // Simulated time from the discrete-event runtime; all zero under the
  // default free compute/network models.
  double virtual_ms = 0.0;      ///< virtual duration of the round
  double client_p50_ms = 0.0;   ///< median client round-trip latency
  double client_p95_ms = 0.0;   ///< straggler tail latency
  int stragglers_cut = 0;       ///< deadline mode: updates past the cut
  double mean_staleness = 0.0;  ///< async mode: mean versions-behind
};

/// Base class of every federated optimization algorithm in this
/// repository. It implements the FedAvg skeleton — client sampling, E
/// local SGD/RMSProp steps on each sampled client, weighted server
/// aggregation, byte-exact communication accounting — and exposes hooks
/// that subclasses use to become FedProx, SCAFFOLD, q-FedAvg, rFedAvg or
/// rFedAvg+.
///
/// Rounds run on a discrete-event simulation runtime (src/sim/): every
/// transfer and local-training bout is assigned a virtual duration by the
/// configured compute/network models, client completions are arrival
/// events on a virtual clock, and the server's round-termination policy
/// (FlConfig::sim.mode) decides which arrivals make the aggregate:
///   - kSync: barrier on the slowest client (classic FedAvg round);
///   - kDeadline: cut the round at sim.deadline_ms of virtual time and
///     aggregate only the updates that arrived;
///   - kAsync: buffered asynchronous — one server update per
///     sim.async_buffer arrivals, each weighted by 1/(1+staleness).
/// All sim randomness lives in per-(client, round) keyed streams separate
/// from the training RNG, so with the default free models and kSync mode
/// every algorithm is bit-identical to the pre-sim simulator.
///
/// Local training of a round's cohort runs sequentially on one scratch
/// model when config.num_threads <= 1, or in parallel on per-client
/// scratch models via a thread pool otherwise; both paths are
/// bit-identical because each client's randomness (batcher stream) is
/// its own and models draw no randomness after construction.
class FederatedAlgorithm {
 public:
  FederatedAlgorithm(std::string name, const FlConfig& config,
                     const Dataset* train_data,
                     std::vector<ClientView> clients,
                     const ModelFactory& model_factory);

  /// Cross-device (pool) mode: clients are seeded views into a shared
  /// ClientPool, materialized lazily when first sampled — construction is
  /// O(1) in the enrolled population and each round costs O(sampled).
  /// Restrictions: uniform selection and the sync/deadline policies only
  /// (loss-adaptive selection and the async idle scan are O(N) by
  /// nature). The pool must outlive the algorithm.
  FederatedAlgorithm(std::string name, const FlConfig& config,
                     const ClientPool* pool,
                     const ModelFactory& model_factory);
  virtual ~FederatedAlgorithm() = default;

  FederatedAlgorithm(const FederatedAlgorithm&) = delete;
  FederatedAlgorithm& operator=(const FederatedAlgorithm&) = delete;

  const std::string& name() const { return name_; }
  int num_clients() const {
    return client_pool_ != nullptr ? client_pool_->num_clients()
                                   : static_cast<int>(clients_.size());
  }
  /// True when client state is lazily materialized from a ClientPool.
  bool pool_mode() const { return client_pool_ != nullptr; }
  /// Number of clients whose view/batcher state is currently resident
  /// (pool mode; the legacy path keeps every client resident).
  int materialized_clients() const {
    return pool_mode() ? static_cast<int>(lazy_batchers_.size())
                       : num_clients();
  }
  /// Pool mode: materializes every client's view and batcher up front,
  /// turning this instance into the *eager* reference of the
  /// lazy-vs-eager differential tests. O(N); never called by the
  /// simulator itself.
  void MaterializeAllClients();
  const FlConfig& config() const { return config_; }
  const Tensor& global_state() const { return global_state_; }
  CommStats& comm() { return comm_; }
  /// The fault-injecting transport every transfer goes through. With the
  /// default (fault-free) FaultOptions it is a transparent pass-through.
  const FaultChannel& channel() const { return channel_; }
  /// The virtual clock of the simulation runtime (monotone across rounds).
  const VirtualClock& clock() const { return clock_; }
  /// Number of server aggregations applied so far (the "version" that
  /// async staleness is measured against).
  int server_version() const { return server_version_; }
  /// The run's adversarial-client fault model (inactive by default).
  const Adversary& adversary() const { return adversary_; }
  /// Per-client count of updates/maps the server quarantined (the
  /// rejection reputation; all zero on clean runs). Legacy mode only —
  /// pool mode stores the reputation sparsely (rejection_count below).
  const std::vector<int64_t>& rejection_counts() const {
    return rejection_counts_;
  }
  /// Rejection reputation of one client; works in both modes.
  int64_t rejection_count(int client) const;

  /// Serializes the run's complete mutable state — global model, every
  /// RNG stream position, batcher cursors, channel/ledger counters,
  /// virtual clock, selection losses, rejection reputation, plus the
  /// subclass's SaveExtraState — into *out (appended). Together with the
  /// trainer's history this is a round-granular checkpoint: restoring it
  /// into a freshly constructed algorithm reproduces the uninterrupted
  /// run bit for bit. Must be called at a round boundary; aborts if
  /// async updates are still in flight.
  void SaveRunState(std::vector<uint8_t>* out) const;

  /// Restores state written by SaveRunState into this freshly
  /// constructed instance. Aborts on an algorithm/topology mismatch
  /// (different name, client count, or model size) or a malformed blob.
  void LoadRunState(const std::vector<uint8_t>& blob);

  /// The scratch model with the *global* state loaded (for evaluation).
  FeatureModel* GlobalModel();

  // ---- Remote execution (src/serve) ----

  /// Installs the executor local training is delegated to (nullptr
  /// restores in-process training). The server stays authoritative for
  /// every piece of run state — selection, channel draws, hooks,
  /// aggregation all still run here, and each delegated client's batcher
  /// stream is advanced in lockstep via Batcher::Skip — so trajectories
  /// and checkpoints are byte-identical to in-process execution. The
  /// executor must outlive the rounds it serves.
  void set_train_executor(TrainExecutor* executor) {
    train_executor_ = executor;
  }
  TrainExecutor* train_executor() const { return train_executor_; }

  /// Worker-side mirror of one delegated job, used by the rfed_worker
  /// replica (never by the serving loop itself): install the broadcast
  /// model, apply the job's context blob, run the local steps.
  void InstallGlobalState(Tensor state) { SetGlobalState(std::move(state)); }

  /// The EncodeTrainContext hook's output for one job, framed for
  /// ApplyTrainContext on the worker replica.
  std::vector<uint8_t> EncodeTrainContextFor(int round, int client) const;

  /// Decodes a context blob written by EncodeTrainContextFor into this
  /// replica's DecodeTrainContext hook. Aborts on trailing bytes.
  void ApplyTrainContext(int round, int client,
                         const std::vector<uint8_t>& blob);

  /// Serializes `client`'s current batcher-stream state (shuffled order,
  /// cursor, shuffle RNG) — the explicit base a JOB carries so a worker
  /// replica can execute it without the lockstep Skip() assumption. Must
  /// be called *before* SkipLocalBatches mirrors the job server-side.
  std::vector<uint8_t> EncodeBatcherBaseFor(int client);

  /// Restores a blob written by EncodeBatcherBaseFor into this replica's
  /// batcher for `client` (worker side, once per JOB). Aborts on an
  /// index-multiset mismatch (wrong client or partition) or trailing
  /// bytes.
  void InstallBatcherBase(int client, const std::vector<uint8_t>& blob);

  /// Runs the client's local steps from the installed global state (the
  /// worker half of a JOB); advances this replica's batcher stream with
  /// real Next() draws, exactly as the server's Skip() replica does.
  std::pair<Tensor, double> ExecuteLocalTraining(int round, int client);

  /// Executes one communication round, advancing the global model. In
  /// async mode one call == one server update (sim.async_buffer arrivals).
  virtual RoundResult RunRound(int round);

 protected:
  // ---- Hooks for subclasses ----

  /// Called once per round before any local training. In async mode
  /// `selected` holds only the *newly dispatched* clients (previously
  /// dispatched ones are still in flight).
  virtual void OnRoundStart(int round, const std::vector<int>& selected) {}

  /// Extra differentiable loss added to the local objective of `client`
  /// for one mini-batch (e.g. the λ·r_k distribution regularizer).
  /// Return an invalid Variable for "none". May run on a worker thread;
  /// must not mutate shared algorithm state.
  virtual Variable ExtraLoss(int client, const ModelOutput& output,
                             const Batch& batch) {
    return Variable();
  }

  /// Called after backward and before the optimizer step of each local
  /// step; may adjust the gradients of `params` — the parameters of the
  /// model instance actually training `client`, which is NOT the shared
  /// scratch model when training runs on the thread pool (FedProx,
  /// SCAFFOLD). May run on a worker thread; must not mutate shared state.
  virtual void PostBackward(int client,
                            const std::vector<Variable*>& params) {}

  /// Called after `client` finished its local steps *and* its update
  /// reached the server within the round policy's window; `new_state` is
  /// its trained flat model (rFedAvg computes its δ map here). Always
  /// runs on the main thread. On the sequential sync/deadline path it is
  /// interleaved with the cohort's training in cohort order (matching
  /// the pre-sim simulator operation-for-operation); on the parallel
  /// path it runs after all training, still in cohort order; in async
  /// mode it runs at arrival, in virtual-time order.
  virtual void OnClientTrained(int round, int client,
                               const Tensor& new_state) {}

  /// Aggregates client states into the next global state. `selected`
  /// holds the round's *survivors* — clients whose updates reached the
  /// server through the fault channel within the round policy's window
  /// (the full sampled cohort in sync fault-free runs). The default is
  /// the FedAvg weighted average with weights renormalized over that
  /// set — scaled by the staleness factors in async mode — so dropped
  /// clients never skew the mean. `start_losses` holds each survivor's
  /// objective at its round-start model when RequiresStartLosses()
  /// (q-FedAvg). Not called at all if every update was lost (the global
  /// state holds).
  virtual void Aggregate(int round, const std::vector<int>& selected,
                         const std::vector<Tensor>& new_states,
                         const std::vector<double>& start_losses);

  /// Called after aggregation with the round's survivors (rFedAvg+ runs
  /// its second synchronization and map refresh here).
  virtual void OnRoundEnd(int round, const std::vector<int>& selected) {}

  /// Subclasses that need F_k(w_t) at the round-start model (q-FedAvg)
  /// return true to have start_losses computed (extra forward pass).
  virtual bool RequiresStartLosses() const { return false; }

  /// Number of local steps `client` runs this round. The default is the
  /// configured E; FedNova lets it vary with the client's data size.
  virtual int LocalSteps(int client) const { return config_.local_steps; }

  /// Hook for subclass state that must survive a crash: SCAFFOLD's
  /// control variates, FedAvgM's momentum, rFedAvg's map store and DP
  /// noise stream. Called by Save/LoadRunState after the base state;
  /// Load must read exactly what Save wrote (the blob is length-checked).
  virtual void SaveExtraState(CheckpointWriter* writer) const {}
  virtual void LoadExtraState(CheckpointReader* reader) {}

  /// Serializes the server-side state a remote worker replica needs —
  /// beyond the broadcast init state itself — before it can run
  /// LocalTrain for `client` this round: SCAFFOLD's control variates,
  /// rFedAvg's peer δ maps. The base writes nothing (FedAvg-family
  /// training depends only on the init state). Decode must read exactly
  /// what Encode wrote for the same (round, client); ApplyTrainContext
  /// length-checks the blob.
  virtual void EncodeTrainContext(int round, int client,
                                  CheckpointWriter* writer) const {}
  virtual void DecodeTrainContext(int round, int client,
                                  CheckpointReader* reader) {}

  /// Whether a round's clients may train concurrently. Algorithms whose
  /// OnClientTrained feeds freshly updated server state back into the
  /// same round's later training (SCAFFOLD's incremental control-variate
  /// refresh) are order-dependent and must return false: they always run
  /// the sequential interleaved path, regardless of config.num_threads.
  virtual bool SupportsParallelTraining() const { return true; }

  /// Whether the streaming/chunked aggregation path (stream_chunk > 0)
  /// may replace this algorithm's Aggregate call. Only valid for
  /// algorithms that use the base class's FedAvg weighted mean; any
  /// subclass overriding Aggregate (q-FedAvg, FedAvgM, FedNova) must
  /// return false, since streaming folds updates into a running tree sum
  /// and never materializes the new_states vector their override needs.
  virtual bool SupportsStreamingAggregation() const { return true; }

  // ---- Services for subclasses ----

  /// Runs E local steps from `init_state` on `client`; returns the new
  /// flat state and the mean mini-batch loss. Trains on `model` when
  /// given (a per-client scratch model on the parallel path), else on
  /// the shared scratch model.
  std::pair<Tensor, double> LocalTrain(int round, int client,
                                       const Tensor& init_state,
                                       FeatureModel* model = nullptr);

  /// Mean loss of `client`'s local objective at `state` (no gradient),
  /// over at most config.max_examples_per_pass examples. Evaluates on
  /// `model` when given, else on the shared scratch model.
  double EvaluateLocalLoss(int client, const Tensor& state,
                           FeatureModel* model = nullptr);

  /// Mean feature vector δ_k of `client`'s local data under `state`
  /// (capped full-data pass); the paper's local mapping operator. With
  /// use_logits the map is taken over the logits layer instead (the
  /// regularizer-placement ablation).
  Tensor ComputeClientDelta(int client, const Tensor& state,
                            bool use_logits = false);

  /// Sends one full model through the fault channel (charging the
  /// ledger); returns true iff the transfer was delivered this round.
  bool ChargeModelDownload();
  bool ChargeModelUpload();

  std::vector<Variable*> Params() { return model_->Parameters(); }
  int64_t model_bytes() const { return model_bytes_; }
  /// Dense p_k table; legacy mode only (pool mode computes weights O(1)
  /// per client via client_weight, never materializing the table).
  const std::vector<double>& weights() const { return weights_; }
  /// FedAvg weight p_k of one client; works in both modes.
  double client_weight(int k) const;
  const Dataset* train_data() const { return train_data_; }
  /// Client k's index view. Pool mode materializes (and caches) it on
  /// first use — main thread only; worker threads see views the round's
  /// phase A already pinned.
  const ClientView& client_view(int k) const;
  Rng* rng() { return &rng_; }
  FeatureModel* raw_model() { return model_.get(); }
  void SetGlobalState(Tensor state) { global_state_ = std::move(state); }

  /// Picks the round's cohort of round(SR * N) clients using the
  /// configured selection strategy (uniform or loss-adaptive).
  std::vector<int> SampleClients();

  /// Applies the configured upload compressor to (state - global): the
  /// returned state is global + roundtrip(delta). Charges the compressed
  /// wire size instead of the full model when a compressor is active.
  /// *delivered (may be null) reports whether the upload survived the
  /// fault channel; an undelivered state must not be aggregated.
  Tensor CompressUploadedState(const Tensor& state,
                               bool* delivered = nullptr);

  /// Mutable channel for subclasses routing their own transfers.
  FaultChannel& channel() { return channel_; }

  /// Applies the configured robust aggregation rule (trimmed mean,
  /// median, or norm-bounded mean anchored at `reference`) to the
  /// survivors' values under their renormalized p_k weights (times the
  /// async staleness scales when set). Only valid when
  /// config().robust.mean() is false; the FedAvg mean keeps its original
  /// byte-identical path in Aggregate.
  Tensor RobustCombine(const std::vector<int>& selected,
                       const std::vector<Tensor>& values,
                       const Tensor& reference);

  /// Non-finite screen for a client-computed feature map (rFedAvg/+).
  /// Returns true when the map is clean or validation is off; otherwise
  /// quarantines it — `fl.quarantined_maps` plus the client's rejection
  /// reputation — and returns false, so the poisoned map never reaches
  /// the DeltaMapStore.
  bool ScreenMap(int client, const Tensor& map);

  /// Caps an index list to config.max_examples_per_pass examples
  /// (deterministic prefix after a client-stable shuffle).
  std::vector<int> CappedIndices(int client) const;

 private:
  /// Shared constructor of both modes; exactly one of `clients` / `pool`
  /// is populated.
  FederatedAlgorithm(std::string name, const FlConfig& config,
                     const Dataset* train_data,
                     std::vector<ClientView> clients, const ClientPool* pool,
                     const ModelFactory& model_factory);

  /// Per-client record of the round's dispatch + local-training phase.
  struct ClientWork {
    int client = -1;
    bool trained = false;     ///< model broadcast arrived and E steps ran
    Tensor state;             ///< trained local flat state
    double loss = 0.0;        ///< mean mini-batch loss of the local steps
    double start_loss = 0.0;  ///< F_k(w_t) when RequiresStartLosses()
    double down_ms = 0.0;     ///< virtual broadcast latency
    double compute_ms = 0.0;  ///< virtual local-compute duration
  };

  /// An update travelling to the server in async mode.
  struct InFlight {
    int client = -1;
    int version = 0;    ///< server_version_ at dispatch (staleness base)
    Tensor state;       ///< trained local state (for OnClientTrained)
    Tensor uploaded;    ///< post-compression state to aggregate
    bool delivered = false;
    double loss = 0.0;
    double start_loss = 0.0;
    double completion_ms = 0.0;  ///< down + compute + up duration
  };

  /// Broadcasts to and locally trains `cohort` (in order): phase A runs
  /// the channel transfers and draws virtual durations sequentially (the
  /// shared channel RNG must be consumed in a deterministic order), phase
  /// B runs the local training — on the thread pool with per-client
  /// scratch models when the configuration and algorithm allow, else
  /// sequentially on the shared one.
  void TrainCohort(int round, const std::vector<int>& cohort,
                   bool want_start_losses, std::vector<ClientWork>* work);

  /// True when this round should use the phased parallel path.
  bool UseParallelPath(size_t cohort_size) const;

  /// True when a pipelined executor should drive this cohort through the
  /// phased path (submit everything in phase A, collect in phase B).
  /// Gated to order-independent algorithms on a fault-free channel: the
  /// phased path consumes channel RNG in a different order than the
  /// sequential one, so under faults the loop falls back to strict
  /// submit/collect lockstep, which matches the sequential trajectory
  /// draw-for-draw.
  bool UseRemotePipelined(size_t cohort_size) const;

  /// Runs one client's local training wherever it belongs: LocalTrain in
  /// process, or Submit+Collect through the installed executor (with the
  /// server's batcher replica advanced via SkipLocalBatches). Pipelined
  /// cohorts pass already_submitted = true, having submitted in phase A.
  std::pair<Tensor, double> DispatchTrain(int round, int client,
                                          const Tensor& init_state,
                                          FeatureModel* model,
                                          bool already_submitted);

  /// Advances `client`'s batcher stream by LocalSteps(client) skipped
  /// batches — the state mutation LocalTrain would have caused here.
  void SkipLocalBatches(int client);

  /// Lazily builds per-task scratch models for the parallel path.
  void EnsureScratchModels(size_t n);

  /// Sync and deadline policies: barrier round with an optional cut.
  RoundResult RunRoundBarrier(int round);
  /// Buffered-async policy: one server update per async_buffer arrivals.
  RoundResult RunRoundAsync(int round);

  /// Bumps `client`'s rejection reputation and publishes its (lazily
  /// registered) `fl.rejections.c<k>` gauge.
  void RecordRejection(int client);

  /// Records `client`'s last local loss (dense table in legacy mode,
  /// sparse map in pool mode).
  void RecordLoss(int client, double loss);

  /// Pool mode: materializes and caches client k's view + batcher from
  /// the pool's keyed streams. Must run on the main thread; phase A of
  /// each round pins the cohort so phase B workers only read. No-op in
  /// legacy mode and for already-resident clients.
  void EnsureClientMaterialized(int k) const;

  /// Client k's batcher (legacy table or lazy pool-mode cache).
  Batcher& BatcherFor(int k);

  /// True when this barrier round should stream: chunked training with
  /// the O(log n) tree accumulator in place of the buffered Aggregate.
  bool StreamingEligible() const;

  /// The server-side validation screen: true when `state` and `uploaded`
  /// are both clean (or validation is off), false after quarantining the
  /// update (counter + reputation). Runs before OnClientTrained so a
  /// poisoned update never touches control variates or map stores.
  bool ValidateUpdate(int client, const Tensor& state,
                      const Tensor& uploaded);

  std::string name_;
  FlConfig config_;
  const Dataset* train_data_;
  std::vector<ClientView> clients_;
  std::vector<double> weights_;  // p_k = n_k / n over all clients
  // ---- Cross-device (pool) mode ----
  // Lazily materialized per-client state, keyed by client id. The caches
  // persist across rounds — a client re-sampled later must resume its own
  // batcher stream exactly where it left off, as the legacy dense tables
  // do — so residency grows with the union of sampled clients, not with
  // the enrolled population. Mutable because materialization happens
  // behind const accessors (client_view/CappedIndices).
  const ClientPool* client_pool_ = nullptr;
  mutable std::unordered_map<int, ClientView> lazy_views_;
  mutable std::unordered_map<int, Batcher> lazy_batchers_;
  mutable int64_t lazy_state_bytes_ = 0;  ///< resident view+batcher bytes
  std::unordered_map<int, double> sparse_losses_;
  std::unordered_map<int, int64_t> sparse_rejections_;
  // Scale gauges, registered only in pool/sharded runs so legacy CSV
  // columns are unchanged.
  obs::Gauge* m_shard_count_ = nullptr;
  obs::Gauge* m_agg_peak_bytes_ = nullptr;
  obs::Gauge* m_materialized_clients_ = nullptr;
  obs::Gauge* m_client_state_bytes_ = nullptr;
  /// The run's adversarial clients (fl/adversary.h); inert by default.
  Adversary adversary_;
  ModelFactory model_factory_;
  std::unique_ptr<FeatureModel> model_;
  Tensor global_state_;
  int64_t model_bytes_;
  std::vector<Batcher> batchers_;
  Rng rng_;
  CommStats comm_;
  FaultChannel channel_;
  std::unique_ptr<UpdateCompressor> compressor_;
  bool compression_enabled_;
  /// Last reported local loss per client (drives adaptive selection).
  std::vector<double> last_losses_;
  /// Per-client quarantine counts (the rejection reputation).
  std::vector<int64_t> rejection_counts_;
  // Robustness metric handles, registered eagerly at construction so
  // every run's CSV has the same columns.
  obs::Counter* m_quarantined_;
  obs::Counter* m_quarantined_maps_;
  obs::Counter* m_clipped_;
  obs::Histogram* m_update_norm_;

  // ---- Simulation runtime ----
  VirtualClock clock_;
  EventQueue queue_;
  std::unique_ptr<ComputeTimeModel> compute_model_;
  NetworkModel network_model_;
  /// Per-survivor aggregation scale for the current Aggregate call
  /// (async staleness weights); empty = all ones (bit-identical path).
  std::vector<double> agg_scale_;
  int server_version_ = 0;
  // Async bookkeeping: updates in flight and which clients are busy.
  std::unordered_map<int64_t, InFlight> in_flight_;
  std::vector<char> client_busy_;

  // ---- Parallel local training ----
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<FeatureModel>> scratch_models_;

  // ---- Remote execution ----
  TrainExecutor* train_executor_ = nullptr;  ///< not owned; may be null
};

}  // namespace rfed

#endif  // RFED_FL_ALGORITHM_H_
