#ifndef RFED_FL_ALGORITHM_H_
#define RFED_FL_ALGORITHM_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/batcher.h"
#include "fl/channel.h"
#include "fl/comm.h"
#include "fl/compression.h"
#include "fl/types.h"
#include "nn/models.h"

namespace rfed {

/// Result of one communication round.
struct RoundResult {
  double train_loss = 0.0;   ///< weighted mean local training loss
  double seconds = 0.0;      ///< wall time spent in local computation
};

/// Base class of every federated optimization algorithm in this
/// repository. It implements the FedAvg skeleton — client sampling, E
/// local SGD/RMSProp steps on each sampled client, weighted server
/// aggregation, byte-exact communication accounting — and exposes hooks
/// that subclasses use to become FedProx, SCAFFOLD, q-FedAvg, rFedAvg or
/// rFedAvg+. The simulation is single-process: one scratch model instance
/// is re-loaded with each client's state in turn, which keeps memory at
/// O(model) instead of O(N * model).
class FederatedAlgorithm {
 public:
  FederatedAlgorithm(std::string name, const FlConfig& config,
                     const Dataset* train_data,
                     std::vector<ClientView> clients,
                     const ModelFactory& model_factory);
  virtual ~FederatedAlgorithm() = default;

  FederatedAlgorithm(const FederatedAlgorithm&) = delete;
  FederatedAlgorithm& operator=(const FederatedAlgorithm&) = delete;

  const std::string& name() const { return name_; }
  int num_clients() const { return static_cast<int>(clients_.size()); }
  const FlConfig& config() const { return config_; }
  const Tensor& global_state() const { return global_state_; }
  CommStats& comm() { return comm_; }
  /// The fault-injecting transport every transfer goes through. With the
  /// default (fault-free) FaultOptions it is a transparent pass-through.
  const FaultChannel& channel() const { return channel_; }

  /// The scratch model with the *global* state loaded (for evaluation).
  FeatureModel* GlobalModel();

  /// Executes one communication round, advancing the global model.
  virtual RoundResult RunRound(int round);

 protected:
  // ---- Hooks for subclasses ----

  /// Called once per round before any local training.
  virtual void OnRoundStart(int round, const std::vector<int>& selected) {}

  /// Extra differentiable loss added to the local objective of `client`
  /// for one mini-batch (e.g. the λ·r_k distribution regularizer).
  /// Return an invalid Variable for "none".
  virtual Variable ExtraLoss(int client, const ModelOutput& output,
                             const Batch& batch) {
    return Variable();
  }

  /// Called after backward and before the optimizer step of each local
  /// step; may adjust parameter gradients (FedProx, SCAFFOLD).
  virtual void PostBackward(int client) {}

  /// Called after `client` finished its local steps; `new_state` is its
  /// trained flat model (rFedAvg computes its δ map here).
  virtual void OnClientTrained(int round, int client,
                               const Tensor& new_state) {}

  /// Aggregates client states into the next global state. `selected`
  /// holds the round's *survivors* — clients whose updates reached the
  /// server through the fault channel (the full sampled cohort when no
  /// faults are configured). The default is the FedAvg weighted average
  /// with weights renormalized over that set, so dropped clients never
  /// skew the mean. `start_losses` holds each survivor's objective at
  /// the round-start model when RequiresStartLosses() (q-FedAvg). Not
  /// called at all if every update was lost (the global state holds).
  virtual void Aggregate(int round, const std::vector<int>& selected,
                         const std::vector<Tensor>& new_states,
                         const std::vector<double>& start_losses);

  /// Called after aggregation with the round's survivors (rFedAvg+ runs
  /// its second synchronization and map refresh here).
  virtual void OnRoundEnd(int round, const std::vector<int>& selected) {}

  /// Subclasses that need F_k(w_t) at the round-start model (q-FedAvg)
  /// return true to have start_losses computed (extra forward pass).
  virtual bool RequiresStartLosses() const { return false; }

  /// Number of local steps `client` runs this round. The default is the
  /// configured E; FedNova lets it vary with the client's data size.
  virtual int LocalSteps(int client) const { return config_.local_steps; }

  // ---- Services for subclasses ----

  /// Runs E local steps from `init_state` on `client`; returns the new
  /// flat state and the mean mini-batch loss.
  std::pair<Tensor, double> LocalTrain(int round, int client,
                                       const Tensor& init_state);

  /// Mean loss of `client`'s local objective at `state` (no gradient),
  /// over at most config.max_examples_per_pass examples.
  double EvaluateLocalLoss(int client, const Tensor& state);

  /// Mean feature vector δ_k of `client`'s local data under `state`
  /// (capped full-data pass); the paper's local mapping operator. With
  /// use_logits the map is taken over the logits layer instead (the
  /// regularizer-placement ablation).
  Tensor ComputeClientDelta(int client, const Tensor& state,
                            bool use_logits = false);

  /// Sends one full model through the fault channel (charging the
  /// ledger); returns true iff the transfer was delivered this round.
  bool ChargeModelDownload();
  bool ChargeModelUpload();

  std::vector<Variable*> Params() { return model_->Parameters(); }
  int64_t model_bytes() const { return model_bytes_; }
  const std::vector<double>& weights() const { return weights_; }
  const Dataset* train_data() const { return train_data_; }
  const ClientView& client_view(int k) const {
    return clients_[static_cast<size_t>(k)];
  }
  Rng* rng() { return &rng_; }
  FeatureModel* raw_model() { return model_.get(); }
  void SetGlobalState(Tensor state) { global_state_ = std::move(state); }

  /// Picks the round's cohort of round(SR * N) clients using the
  /// configured selection strategy (uniform or loss-adaptive).
  std::vector<int> SampleClients();

  /// Applies the configured upload compressor to (state - global): the
  /// returned state is global + roundtrip(delta). Charges the compressed
  /// wire size instead of the full model when a compressor is active.
  /// *delivered (may be null) reports whether the upload survived the
  /// fault channel; an undelivered state must not be aggregated.
  Tensor CompressUploadedState(const Tensor& state,
                               bool* delivered = nullptr);

  /// Mutable channel for subclasses routing their own transfers.
  FaultChannel& channel() { return channel_; }

  /// Caps an index list to config.max_examples_per_pass examples
  /// (deterministic prefix after a client-stable shuffle).
  std::vector<int> CappedIndices(int client) const;

 private:
  std::string name_;
  FlConfig config_;
  const Dataset* train_data_;
  std::vector<ClientView> clients_;
  std::vector<double> weights_;  // p_k = n_k / n over all clients
  std::unique_ptr<FeatureModel> model_;
  Tensor global_state_;
  int64_t model_bytes_;
  std::vector<Batcher> batchers_;
  Rng rng_;
  CommStats comm_;
  FaultChannel channel_;
  std::unique_ptr<UpdateCompressor> compressor_;
  bool compression_enabled_;
  /// Last reported local loss per client (drives adaptive selection).
  std::vector<double> last_losses_;
};

}  // namespace rfed

#endif  // RFED_FL_ALGORITHM_H_
