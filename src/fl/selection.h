#ifndef RFED_FL_SELECTION_H_
#define RFED_FL_SELECTION_H_

#include <vector>

#include "util/rng.h"

namespace rfed {

/// Cohort selection strategies. FedAvg samples uniformly without
/// replacement; the adaptive strategy (the "adaptive participant
/// selection" future-work direction of the paper, in the spirit of
/// Power-of-Choice) over-samples clients whose last known local loss is
/// high, which speeds convergence on skewed data at some fairness risk.

/// Uniform sample of cohort_size of num_clients clients without
/// replacement. Aborts if cohort_size > num_clients; the full-cohort
/// case (cohort_size == num_clients) returns 0..N-1 in order without
/// consuming randomness, so SR = 1.0 runs are RNG-neutral.
std::vector<int> UniformSelection(int num_clients, int cohort_size, Rng* rng);

/// Loss-proportional sampling without replacement (sequential weighted
/// draws): client k is drawn with probability proportional to its last
/// known local loss. Clients that never reported a loss (NaN/<=0
/// entries) get the mean of the known losses, so unseen clients are
/// neither starved nor favored. Consumes exactly cohort_size Uniform()
/// draws from `rng`.
std::vector<int> LossProportionalSelection(
    const std::vector<double>& last_losses, int cohort_size, Rng* rng);

/// Uniform sample of cohort_size distinct clients in O(cohort_size) time
/// and memory, independent of num_clients — the cross-device path, where
/// materializing a length-N permutation per round (as UniformSelection
/// does) would dominate the round at N = 10^6. Uses Robert Floyd's
/// algorithm; the returned cohort is sorted ascending, which doubles as
/// the canonical shard order for hierarchical aggregation
/// (fl/shard_agg.h). Consumes exactly cohort_size UniformInt draws; the
/// full-cohort case consumes none, mirroring UniformSelection.
///
/// Note: the sampled *set* is uniform but the draw sequence differs from
/// UniformSelection, so this is only used in pool mode (lazy client
/// state), never on the golden-pinned legacy path.
std::vector<int> SparseUniformSelection(int num_clients, int cohort_size,
                                        Rng* rng);

}  // namespace rfed

#endif  // RFED_FL_SELECTION_H_
