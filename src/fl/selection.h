#ifndef RFED_FL_SELECTION_H_
#define RFED_FL_SELECTION_H_

#include <vector>

#include "util/rng.h"

namespace rfed {

/// Cohort selection strategies. FedAvg samples uniformly without
/// replacement; the adaptive strategy (the "adaptive participant
/// selection" future-work direction of the paper, in the spirit of
/// Power-of-Choice) over-samples clients whose last known local loss is
/// high, which speeds convergence on skewed data at some fairness risk.

/// Uniform sample of k of n clients.
std::vector<int> UniformSelection(int num_clients, int cohort_size, Rng* rng);

/// Loss-proportional sampling without replacement: client k is drawn
/// with probability proportional to max(last_losses[k], floor). Clients
/// that never reported a loss (NaN/<=0 entries) get the mean weight.
std::vector<int> LossProportionalSelection(
    const std::vector<double>& last_losses, int cohort_size, Rng* rng);

}  // namespace rfed

#endif  // RFED_FL_SELECTION_H_
