#ifndef RFED_FL_SHARD_AGG_H_
#define RFED_FL_SHARD_AGG_H_

#include <cstdint>
#include <vector>

#include "fl/robust_agg.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace rfed {

/// Hierarchical (sharded) aggregation for cross-device cohorts.
///
/// All paths in this header evaluate ONE canonical pairwise reduction
/// tree, fixed by the leaf order alone:
///
///   reduce(leaves[0..n)) =
///     n == 1 ? leaves[0]
///            : reduce(first h) + reduce(rest),  h = floor_pow2(n - 1)
///
/// i.e. the split peels the largest power of two strictly below n, and
/// every '+' is Tensor::AddInPlace(left, right). Because h is a power of
/// two >= fanout whenever n > fanout (for power-of-two fanout), shard
/// boundaries at multiples of `fanout` are exact subtree frontiers of
/// this recursion. Shard partials can therefore be computed by
/// independent ThreadPool tasks and reduced in canonical index order at
/// the root, and the result is bit-identical for EVERY power-of-two
/// fanout and every thread count — float addition never gets
/// re-associated, only re-scheduled. The streaming accumulator below
/// evaluates the same tree one leaf at a time, which is what lets the
/// server aggregate a cohort in chunks without ever holding all updates.
/// tests/scale_test.cc pins all three identities.

/// True iff x is a positive power of two.
bool IsPow2(int x);

/// Number of leaf-level shard tasks for m leaves at `fanout` leaves per
/// shard: ceil(m / fanout).
int ShardCount(int64_t m, int fanout);

/// Canonical-tree weighted sum: sum of values[i] * scales[i] with leaves
/// scaled up front. `fanout` (a power of two) is the number of leaves per
/// shard task; the tasks run on `pool` when given (nullptr = caller
/// thread). The returned bytes are identical for every valid fanout and
/// pool size.
Tensor ShardTreeWeightedSum(const std::vector<Tensor>& values,
                            const std::vector<float>& scales, int fanout,
                            ThreadPool* pool);

/// Canonical-tree plain sum over borrowed leaves (no scaling, sequential).
/// Used for sparse delta-map totals (core/delta_map.h).
Tensor PairwiseTreeSum(const std::vector<const Tensor*>& leaves);

/// One-leaf-at-a-time evaluation of the canonical tree (binary-counter
/// scheme: the stack holds the partial sums of the complete subtrees
/// matching the binary digits of the leaf count, so peak memory is
/// O(log n) tensors instead of O(n)). Push order must equal leaf order;
/// Finish() then returns bytes identical to ShardTreeWeightedSum over the
/// same scaled leaves.
class StreamingTreeSum {
 public:
  /// Appends the next leaf (already scaled by the caller).
  void Push(Tensor leaf);

  /// Folds the remaining partials and returns the root; requires at least
  /// one Push. Resets the accumulator for reuse.
  Tensor Finish();

  int64_t leaves() const { return leaves_; }
  bool empty() const { return leaves_ == 0; }
  /// High-water mark of tensor bytes held by the accumulator.
  int64_t peak_bytes() const { return peak_bytes_; }

 private:
  struct Node {
    Tensor sum;
    int64_t width;  ///< number of leaves under this partial (power of two)
  };
  std::vector<Node> stack_;
  int64_t leaves_ = 0;
  int64_t tensor_bytes_ = 0;
  int64_t peak_bytes_ = 0;
};

// ---- Coordinate-sharded robust rules ----
// The robust aggregators are per-coordinate statistics, so they shard
// over coordinate blocks rather than clients: [0, size) is cut into one
// block per pool thread (times a small oversubscription factor) and each
// block runs the flat rule's range kernel (fl/robust_agg.h). The result
// is byte-identical to the flat rule for every pool size — fanout plays
// no role in the math, which is exactly the invariance the scale tests
// demand.

Tensor ShardedTrimmedMean(const std::vector<Tensor>& values,
                          const std::vector<double>& weights,
                          double trim_fraction, ThreadPool* pool);

Tensor ShardedMedian(const std::vector<Tensor>& values,
                     const std::vector<double>& weights, ThreadPool* pool);

Tensor ShardedNormBoundedMean(const Tensor& reference,
                              const std::vector<Tensor>& values,
                              const std::vector<double>& weights,
                              double clip_multiplier, NormClipReport* report,
                              ThreadPool* pool);

}  // namespace rfed

#endif  // RFED_FL_SHARD_AGG_H_
