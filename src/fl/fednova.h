#ifndef RFED_FL_FEDNOVA_H_
#define RFED_FL_FEDNOVA_H_

#include "fl/algorithm.h"

namespace rfed {

/// FedNova (Wang et al., NeurIPS'20) — "tackling the objective
/// inconsistency problem": when clients run *different numbers of local
/// steps* (here: one local epoch each, i.e. ceil(n_k / B) steps, capped),
/// plain FedAvg implicitly optimizes a reweighted objective. FedNova
/// normalizes each client's cumulative update by its step count before
/// averaging and rescales by the effective step count:
///   d_k = (x - y_k) / tau_k,   x+ = x - tau_eff * sum_k p_k d_k,
///   tau_eff = sum_k p_k tau_k.
/// Under channel faults both tau_eff and the normalized average are
/// taken over the round's survivors with renormalized p_k, so clients
/// whose updates never arrived cannot skew the effective step count.
class FedNova : public FederatedAlgorithm {
 public:
  /// max_local_steps caps per-client epochs so a huge client cannot
  /// dominate the round's wall time.
  FedNova(const FlConfig& config, int max_local_steps,
          const Dataset* train_data, std::vector<ClientView> clients,
          const ModelFactory& model_factory);

 protected:
  int LocalSteps(int client) const override;
  /// Normalized averaging is not a weighted mean of the uploaded states,
  /// so the streaming fold cannot reproduce it.
  bool SupportsStreamingAggregation() const override { return false; }
  void Aggregate(int round, const std::vector<int>& selected,
                 const std::vector<Tensor>& new_states,
                 const std::vector<double>& start_losses) override;

 private:
  int max_local_steps_;
};

}  // namespace rfed

#endif  // RFED_FL_FEDNOVA_H_
