#ifndef RFED_FL_METRICS_H_
#define RFED_FL_METRICS_H_

#include <string>
#include <utility>
#include <vector>

namespace rfed {

/// Per-round measurements recorded by the trainer; each accuracy/loss
/// curve in the paper's figures is a column of this record.
struct RoundMetrics {
  int round = 0;
  double train_loss = 0.0;     ///< weighted mean local loss this round
  double test_accuracy = 0.0;  ///< global-model accuracy (NaN if not evaluated)
  double round_seconds = 0.0;  ///< local-computation wall time of the round
  int64_t round_bytes = 0;     ///< server<->clients traffic this round
  // Message-level delivery outcomes on the fault channel this round
  // (all delivered / zero dropped when no faults are configured).
  int64_t delivered_messages = 0;  ///< logical messages that arrived
  int64_t dropped_messages = 0;    ///< logical messages lost for good
  int64_t retried_messages = 0;    ///< retransmission attempts
  // Simulated time from the discrete-event runtime (all zero under the
  // default free compute/network models).
  double virtual_ms = 0.0;       ///< virtual duration of the round
  double client_p50_ms = 0.0;    ///< median client round-trip latency
  double client_p95_ms = 0.0;    ///< straggler tail latency
  int stragglers_cut = 0;        ///< deadline mode: arrivals after the cut
  double mean_staleness = 0.0;   ///< async mode: mean versions-behind
  /// Kernel-layer scratch high-water mark (bytes across all thread
  /// arenas) as of the end of this round; see ScratchArena in
  /// tensor/kernels.h. Monotone over a run — the arenas grow and stay.
  int64_t peak_scratch_bytes = 0;
  /// Per-round snapshot of the observability metrics registry
  /// (obs/metrics.h), sorted by name: cumulative metrics (counters,
  /// histogram buckets) as this-round deltas, gauges as absolute
  /// readings. Appended as extra columns by SaveHistoryCsv; the name →
  /// unit table lives in docs/OBSERVABILITY.md. Kept last so existing
  /// aggregate initializers of the fixed fields stay valid.
  std::vector<std::pair<std::string, double>> metrics;
};

/// Full training history of one run.
struct RunHistory {
  std::string algorithm;
  std::vector<RoundMetrics> rounds;

  /// Final-round test accuracy (requires at least one evaluated round).
  double FinalAccuracy() const;
  /// Best test accuracy across rounds.
  double BestAccuracy() const;
  /// First (1-based) round whose test accuracy reaches `target`;
  /// -1 if never reached. Drives Fig. 10a/b.
  int RoundsToReach(double target) const;
  /// Mean per-round wall time. Drives Fig. 10c/d.
  double MeanRoundSeconds() const;
  /// Total communicated bytes.
  int64_t TotalBytes() const;
  /// Delivery totals over the run (fault-channel accounting).
  int64_t TotalDelivered() const;
  int64_t TotalDropped() const;
  int64_t TotalRetried() const;
  /// Total simulated time of the run (sum of per-round virtual
  /// durations); 0 when the sim runtime's models are free.
  double TotalVirtualMs() const;
  /// Cumulative virtual ms through the first round whose train loss is
  /// <= target; -1 if never reached. The time-to-loss comparison behind
  /// the straggler bench.
  double VirtualMsToReachLoss(double target) const;
  /// Total deadline-mode straggler cuts over the run.
  int64_t TotalStragglersCut() const;
  /// Peak kernel scratch-arena bytes observed over the run (max across
  /// rounds of the per-round high-water mark).
  int64_t PeakKernelScratchBytes() const;
};

/// Mean and (population) standard deviation of a sample; the tables
/// report "mean ± std" over seeds.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

}  // namespace rfed

#endif  // RFED_FL_METRICS_H_
