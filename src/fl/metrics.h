#ifndef RFED_FL_METRICS_H_
#define RFED_FL_METRICS_H_

#include <string>
#include <vector>

namespace rfed {

/// Per-round measurements recorded by the trainer; each accuracy/loss
/// curve in the paper's figures is a column of this record.
struct RoundMetrics {
  int round = 0;
  double train_loss = 0.0;     ///< weighted mean local loss this round
  double test_accuracy = 0.0;  ///< global-model accuracy (NaN if not evaluated)
  double round_seconds = 0.0;  ///< local-computation wall time of the round
  int64_t round_bytes = 0;     ///< server<->clients traffic this round
  // Message-level delivery outcomes on the fault channel this round
  // (all delivered / zero dropped when no faults are configured).
  int64_t delivered_messages = 0;  ///< logical messages that arrived
  int64_t dropped_messages = 0;    ///< logical messages lost for good
  int64_t retried_messages = 0;    ///< retransmission attempts
};

/// Full training history of one run.
struct RunHistory {
  std::string algorithm;
  std::vector<RoundMetrics> rounds;

  /// Final-round test accuracy (requires at least one evaluated round).
  double FinalAccuracy() const;
  /// Best test accuracy across rounds.
  double BestAccuracy() const;
  /// First (1-based) round whose test accuracy reaches `target`;
  /// -1 if never reached. Drives Fig. 10a/b.
  int RoundsToReach(double target) const;
  /// Mean per-round wall time. Drives Fig. 10c/d.
  double MeanRoundSeconds() const;
  /// Total communicated bytes.
  int64_t TotalBytes() const;
  /// Delivery totals over the run (fault-channel accounting).
  int64_t TotalDelivered() const;
  int64_t TotalDropped() const;
  int64_t TotalRetried() const;
};

/// Mean and (population) standard deviation of a sample; the tables
/// report "mean ± std" over seeds.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

}  // namespace rfed

#endif  // RFED_FL_METRICS_H_
