#include "fl/scaffold.h"

#include "fl/checkpoint.h"
#include "fl/model_state.h"
#include "util/check.h"

namespace rfed {

Scaffold::Scaffold(const FlConfig& config, const Dataset* train_data,
                   std::vector<ClientView> clients,
                   const ModelFactory& model_factory)
    : FederatedAlgorithm("Scaffold", config, train_data, std::move(clients),
                         model_factory) {
  global_control_ = Tensor(global_state().shape());
  client_controls_.assign(static_cast<size_t>(num_clients()),
                          Tensor(global_state().shape()));
}

void Scaffold::OnRoundStart(int round, const std::vector<int>& selected) {
  round_start_state_ = global_state();
  // The server ships c alongside the model to every sampled client. A
  // lost copy leaves that client correcting with its (slowly moving)
  // stale view of c — the standard straggler approximation — so delivery
  // is charged but not otherwise acted on.
  for (size_t i = 0; i < selected.size(); ++i) {
    channel().Download(model_bytes(), channel_kind::kControl);
  }
}

void Scaffold::PostBackward(int client,
                            const std::vector<Variable*>& params) {
  // g <- g + c - c_k. Reads the controls only; `params` belongs to the
  // model instance training this client (thread-pool safe).
  AddFlatToGradients(global_control_, 1.0, params);
  AddFlatToGradients(client_controls_[static_cast<size_t>(client)], -1.0,
                     params);
}

void Scaffold::OnClientTrained(int round, int client,
                               const Tensor& new_state) {
  // Option II refresh: c_k+ = c_k - c + (x - y_k) / (E * lr).
  const double scale =
      1.0 / (static_cast<double>(config().local_steps) * config().lr);
  Tensor& ck = client_controls_[static_cast<size_t>(client)];
  Tensor ck_new = ck;
  ck_new.Axpy(-1.0f, global_control_);
  Tensor drift = round_start_state_;
  drift.SubInPlace(new_state);  // x - y_k
  ck_new.Axpy(static_cast<float>(scale), drift);

  // Client uploads its refreshed control variate; the client-side c_k
  // refresh happens regardless, but the server-side c update — the
  // cohort mean of (c_k+ - c_k) weighted by |S|/N, i.e. 1/N per trained
  // client — only applies when the upload actually arrives.
  const bool delivered =
      channel().Upload(model_bytes(), channel_kind::kControl);
  if (delivered) {
    Tensor delta_c = ck_new;
    delta_c.SubInPlace(ck);
    global_control_.Axpy(1.0f / static_cast<float>(num_clients()), delta_c);
  }
  ck = std::move(ck_new);
}

void Scaffold::EncodeTrainContext(int round, int client,
                                  CheckpointWriter* writer) const {
  writer->WriteTensor(global_control_);
  writer->WriteTensor(client_controls_[static_cast<size_t>(client)]);
}

void Scaffold::DecodeTrainContext(int round, int client,
                                  CheckpointReader* reader) {
  Tensor c = reader->ReadTensor();
  RFED_CHECK_EQ(c.size(), global_control_.size());
  global_control_ = std::move(c);
  Tensor ck = reader->ReadTensor();
  RFED_CHECK_EQ(ck.size(), global_control_.size());
  client_controls_[static_cast<size_t>(client)] = std::move(ck);
}

void Scaffold::SaveExtraState(CheckpointWriter* writer) const {
  writer->WriteTensor(global_control_);
  writer->WriteU32(static_cast<uint32_t>(client_controls_.size()));
  for (const Tensor& ck : client_controls_) writer->WriteTensor(ck);
}

void Scaffold::LoadExtraState(CheckpointReader* reader) {
  Tensor c = reader->ReadTensor();
  RFED_CHECK_EQ(c.size(), global_control_.size());
  global_control_ = std::move(c);
  const uint32_t count = reader->ReadU32();
  RFED_CHECK_EQ(count, client_controls_.size())
      << "checkpoint is for a different client count";
  for (Tensor& ck : client_controls_) {
    Tensor saved = reader->ReadTensor();
    RFED_CHECK_EQ(saved.size(), ck.size());
    ck = std::move(saved);
  }
}

}  // namespace rfed
