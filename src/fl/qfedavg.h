#ifndef RFED_FL_QFEDAVG_H_
#define RFED_FL_QFEDAVG_H_

#include "fl/algorithm.h"

namespace rfed {

/// q-FedAvg (Li et al., ICLR'20): fair federated learning. Clients train
/// locally like FedAvg; the server reweights each client's model delta by
/// F_k(w_t)^q (its loss at the round-start model raised to the fairness
/// exponent q) and normalizes by the estimated Lipschitz terms:
///   Delta_k = L (w_t - w_k),   h_k = q F_k^{q-1} ||Delta_k||^2 + L F_k^q
///   w_{t+1} = w_t - sum_k F_k^q Delta_k / sum_k h_k,   L = 1 / lr.
/// q = 0 recovers (an unweighted variant of) FedAvg. Under channel
/// faults both sums run over the round's survivors only — start_losses
/// arrives already aligned with the surviving cohort.
class QFedAvg : public FederatedAlgorithm {
 public:
  QFedAvg(const FlConfig& config, double q, const Dataset* train_data,
          std::vector<ClientView> clients, const ModelFactory& model_factory);

  double q() const { return q_; }

 protected:
  bool RequiresStartLosses() const override { return true; }
  /// Aggregation is not a weighted mean of the uploaded states, so the
  /// streaming fold cannot reproduce it.
  bool SupportsStreamingAggregation() const override { return false; }
  void Aggregate(int round, const std::vector<int>& selected,
                 const std::vector<Tensor>& new_states,
                 const std::vector<double>& start_losses) override;

 private:
  double q_;
};

}  // namespace rfed

#endif  // RFED_FL_QFEDAVG_H_
