#include "fl/channel.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "util/check.h"

namespace rfed {

namespace {

// Per-(direction, kind) byte counters, e.g. "comm.up_bytes.map". Kinds
// are a small closed set of literals (channel_kind::*), so a lazy map
// keyed by pointer identity avoids string hashing on every message.
obs::Counter* KindBytesCounter(ChannelDirection direction, const char* kind) {
  static std::mutex mu;
  static std::map<std::pair<int, const char*>, obs::Counter*> cache;
  const std::pair<int, const char*> key(
      direction == ChannelDirection::kDownload ? 0 : 1, kind);
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  const std::string name =
      std::string(direction == ChannelDirection::kDownload ? "comm.down_bytes."
                                                           : "comm.up_bytes.") +
      kind;
  obs::Counter* c = obs::MetricsRegistry::Get().GetCounter(name);
  cache.emplace(key, c);
  return c;
}

}  // namespace

FaultChannel::FaultChannel(const FaultOptions& options, uint64_t seed,
                           CommStats* ledger)
    : options_(options), ledger_(ledger), rng_(seed) {
  RFED_CHECK(ledger_ != nullptr);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
  m_delivered_ = reg.GetCounter("channel.delivered");
  m_dropped_ = reg.GetCounter("channel.dropped");
  m_retried_ = reg.GetCounter("channel.retried");
  m_corrupted_ = reg.GetCounter("channel.corrupted");
  m_duplicated_ = reg.GetCounter("channel.duplicated");
  m_timed_out_ = reg.GetCounter("channel.timed_out");
  m_down_bytes_ = reg.GetCounter("comm.down_bytes");
  m_up_bytes_ = reg.GetCounter("comm.up_bytes");
  m_wire_overhead_ = reg.GetCounter("comm.wire_overhead_bytes");
  RFED_CHECK_GE(options_.drop_prob, 0.0);
  RFED_CHECK_LE(options_.drop_prob, 1.0);
  RFED_CHECK_GE(options_.corrupt_prob, 0.0);
  RFED_CHECK_LE(options_.corrupt_prob, 1.0);
  RFED_CHECK_GE(options_.duplicate_prob, 0.0);
  RFED_CHECK_LE(options_.duplicate_prob, 1.0);
  RFED_CHECK_GE(options_.delay_prob, 0.0);
  RFED_CHECK_LE(options_.delay_prob, 1.0);
  RFED_CHECK_GE(options_.max_retries, 0);
}

void FaultChannel::Charge(ChannelDirection direction, int64_t bytes,
                          const char* kind) {
  if (direction == ChannelDirection::kDownload) {
    ledger_->Download(bytes);
    m_down_bytes_->Add(bytes);
  } else {
    ledger_->Upload(bytes);
    m_up_bytes_->Add(bytes);
  }
  KindBytesCounter(direction, kind)->Add(bytes);
}

void FaultChannel::ChargeFramed(ChannelDirection direction, int64_t wire_bytes,
                                const char* kind) {
  const int64_t overhead = FlMessage::kWireOverheadBytes;
  RFED_CHECK_GE(wire_bytes, overhead);
  Charge(direction, wire_bytes - overhead, kind);
  ledger_->AddWireOverhead(overhead);
  m_wire_overhead_->Add(overhead);
}

FaultChannel::Attempt FaultChannel::AttemptOnce(double* latency_ms) {
  if (options_.drop_prob > 0.0 && rng_.Uniform() < options_.drop_prob) {
    return Attempt::kDropped;
  }
  if (options_.corrupt_prob > 0.0 && rng_.Uniform() < options_.corrupt_prob) {
    return Attempt::kCorrupted;
  }
  if (options_.delay_prob > 0.0 && rng_.Uniform() < options_.delay_prob) {
    // Exponentially distributed link delay.
    *latency_ms += -options_.mean_delay_ms * std::log(1.0 - rng_.Uniform());
  }
  if (options_.round_timeout_ms > 0.0 &&
      *latency_ms > options_.round_timeout_ms) {
    return Attempt::kTimedOut;
  }
  return Attempt::kDelivered;
}

bool FaultChannel::Send(ChannelDirection direction, int64_t bytes,
                        const char* kind) {
  last_latency_ms_ = 0.0;
  if (!options_.enabled()) {
    // Transparent pass-through: same charges, no random draws.
    Charge(direction, bytes, kind);
    ++stats_.delivered;
    ++stats_.round_delivered;
    m_delivered_->Increment();
    return true;
  }
  double latency_ms = 0.0;
  const int attempts = 1 + options_.max_retries;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retried;
      ++stats_.round_retried;
      m_retried_->Increment();
      latency_ms += BackoffDelayMs(options_.backoff, attempt - 1, &rng_);
      if (options_.round_timeout_ms > 0.0 &&
          latency_ms > options_.round_timeout_ms) {
        ++stats_.timed_out;  // the deadline passed while backing off
        m_timed_out_->Increment();
        break;
      }
    }
    Charge(direction, bytes, kind);  // every attempt occupies the wire
    switch (AttemptOnce(&latency_ms)) {
      case Attempt::kDelivered:
        if (options_.duplicate_prob > 0.0 &&
            rng_.Uniform() < options_.duplicate_prob) {
          Charge(direction, bytes, kind);  // the redundant copy also costs
          ++stats_.duplicated;
          m_duplicated_->Increment();
        }
        ++stats_.delivered;
        ++stats_.round_delivered;
        m_delivered_->Increment();
        last_latency_ms_ = latency_ms;
        return true;
      case Attempt::kDropped:
        break;
      case Attempt::kCorrupted:
        ++stats_.corrupted;
        m_corrupted_->Increment();
        break;
      case Attempt::kTimedOut:
        ++stats_.timed_out;
        m_timed_out_->Increment();
        break;
    }
  }
  ++stats_.dropped;
  ++stats_.round_dropped;
  m_dropped_->Increment();
  last_latency_ms_ = latency_ms;
  return false;
}

std::optional<FlMessage> FaultChannel::Transmit(const FlMessage& message,
                                                ChannelDirection direction,
                                                const char* kind) {
  std::vector<uint8_t> wire;
  message.EncodeTo(&wire);
  const int64_t bytes = static_cast<int64_t>(wire.size());
  last_latency_ms_ = 0.0;
  if (!options_.enabled()) {
    ChargeFramed(direction, bytes, kind);
    ++stats_.delivered;
    ++stats_.round_delivered;
    m_delivered_->Increment();
    size_t offset = 0;
    return FlMessage::Decode(wire, &offset);
  }
  double latency_ms = 0.0;
  const int attempts = 1 + options_.max_retries;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retried;
      ++stats_.round_retried;
      m_retried_->Increment();
      latency_ms += BackoffDelayMs(options_.backoff, attempt - 1, &rng_);
      if (options_.round_timeout_ms > 0.0 &&
          latency_ms > options_.round_timeout_ms) {
        ++stats_.timed_out;
        m_timed_out_->Increment();
        break;
      }
    }
    ChargeFramed(direction, bytes, kind);  // every attempt occupies the wire
    if (options_.drop_prob > 0.0 && rng_.Uniform() < options_.drop_prob) {
      continue;  // lost in flight; resend after backoff
    }
    std::vector<uint8_t> received = wire;
    if (options_.corrupt_prob > 0.0 &&
        rng_.Uniform() < options_.corrupt_prob) {
      // Flip one random bit of the actual wire bytes; detection is the
      // receive-side checksum's job, not the lottery's.
      const size_t byte =
          static_cast<size_t>(rng_.UniformInt(static_cast<int>(received.size())));
      received[byte] ^= static_cast<uint8_t>(1u << rng_.UniformInt(8));
    }
    if (options_.delay_prob > 0.0 && rng_.Uniform() < options_.delay_prob) {
      latency_ms += -options_.mean_delay_ms * std::log(1.0 - rng_.Uniform());
    }
    if (options_.round_timeout_ms > 0.0 &&
        latency_ms > options_.round_timeout_ms) {
      ++stats_.timed_out;
      m_timed_out_->Increment();
      continue;
    }
    size_t offset = 0;
    FlMessage decoded;
    if (!FlMessage::TryDecode(received, &offset, &decoded)) {
      ++stats_.corrupted;  // checksum rejected the mangled bytes
      m_corrupted_->Increment();
      continue;
    }
    if (options_.duplicate_prob > 0.0 &&
        rng_.Uniform() < options_.duplicate_prob) {
      ChargeFramed(direction, bytes, kind);  // the redundant copy also costs
      ++stats_.duplicated;
      m_duplicated_->Increment();
    }
    ++stats_.delivered;
    ++stats_.round_delivered;
    m_delivered_->Increment();
    last_latency_ms_ = latency_ms;
    return decoded;
  }
  ++stats_.dropped;
  ++stats_.round_dropped;
  m_dropped_->Increment();
  last_latency_ms_ = latency_ms;
  return std::nullopt;
}

}  // namespace rfed
