#ifndef RFED_FL_ROBUST_AGG_H_
#define RFED_FL_ROBUST_AGG_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace rfed {

/// Server-side defenses against misbehaving clients (fl/adversary.h):
/// a validation pass that quarantines non-finite updates before they
/// touch any server state, and pluggable robust aggregation rules that
/// replace the FedAvg weighted mean. Configured via FlConfig::robust /
/// `--aggregator`; the defaults (validate on, aggregator "mean") are
/// bit-identical to the undefended simulator on clean runs, because the
/// screen only ever *removes* updates and the mean path is untouched.
struct RobustAggOptions {
  /// Aggregation rule applied to the round's surviving updates:
  ///   "mean"         — the FedAvg weighted average (the default).
  ///   "trimmed_mean" — coordinate-wise: drop the floor(trim_fraction*m)
  ///                    smallest and largest values per coordinate, then
  ///                    weighted-average the rest.
  ///   "median"       — coordinate-wise weighted median.
  ///   "norm_clip"    — norm-bounded mean: each update's delta from the
  ///                    current global is clipped to clip_multiplier x
  ///                    the median delta norm, then weighted-averaged.
  std::string aggregator = "mean";
  /// Per-side trim of "trimmed_mean". With m survivors, floor(trim * m)
  /// values fall off each end of every coordinate's sorted sample; a cut
  /// that would discard everything degrades to the coordinate median.
  double trim_fraction = 0.2;
  /// Norm bound of "norm_clip", as a multiple of the median delta norm.
  double clip_multiplier = 3.0;
  /// Non-finite screen: an arriving update (or rFedAvg feature map) with
  /// any NaN/Inf coordinate is quarantined — rejected before aggregation,
  /// map storage, or control-variate refresh — and counted in the
  /// `fl.quarantined_updates` / `fl.quarantined_maps` metrics plus the
  /// per-client rejection reputation. On by default; a no-op for finite
  /// updates, so it never changes a clean run.
  bool validate = true;

  bool mean() const { return aggregator == "mean"; }
};

/// True iff `name` is one of the RobustAggOptions aggregation rules.
bool KnownAggregator(const std::string& name);

/// True iff every element of `t` is finite (no NaN/Inf).
bool AllFinite(const Tensor& t);

/// Coordinate-wise trimmed mean of `values` (all the same shape) under
/// nonnegative `weights`: per coordinate, the floor(trim_fraction * m)
/// smallest and largest samples are discarded and the remainder is
/// weighted-averaged (weights renormalized over the kept samples). A trim
/// that would discard every sample degrades to the coordinate median.
/// Requires values nonempty and weights.size() == values.size().
Tensor CoordinateTrimmedMean(const std::vector<Tensor>& values,
                             const std::vector<double>& weights,
                             double trim_fraction);

/// Coordinate-wise weighted median: per coordinate, the sample at which
/// the cumulative (sorted-by-value) weight first reaches half the total.
Tensor CoordinateMedian(const std::vector<Tensor>& values,
                        const std::vector<double>& weights);

/// Outcome of the norm-bounded mean's clipping pass.
struct NormClipReport {
  int clipped = 0;          ///< updates whose delta norm exceeded the bound
  double median_norm = 0.0; ///< median delta L2 norm of the cohort
  double bound = 0.0;       ///< clip_multiplier * median_norm
  std::vector<double> norms;  ///< pre-clip delta norm of every update
};

/// Norm-bounded weighted mean: each value's delta from `reference` is
/// scaled down to L2 norm <= clip_multiplier * median(delta norms), then
/// the deltas are weighted-averaged and re-anchored at `reference`. The
/// defense of choice against scaled-update attacks: an attacker's
/// contribution is bounded by the honest majority's own scale. `report`
/// (may be null) receives the per-update norms and clip count.
Tensor NormBoundedMean(const Tensor& reference,
                       const std::vector<Tensor>& values,
                       const std::vector<double>& weights,
                       double clip_multiplier, NormClipReport* report);

// ---- Range kernels ----
// The per-coordinate loops of the rules above restricted to coordinates
// [lo, hi) of `out`. Coordinates are computed independently, so running
// disjoint ranges as parallel shard tasks (fl/shard_agg.h) is
// byte-identical to the flat rules — which are themselves just the
// [0, size) case of these kernels.

/// Per-side trim count CoordinateTrimmedMean uses for m samples.
size_t ResolveTrimCount(double trim_fraction, size_t m);

/// Trimmed-mean kernel; `trim` samples fall off each end (already
/// resolved via ResolveTrimCount by the caller).
void TrimmedMeanRange(const std::vector<Tensor>& values,
                      const std::vector<double>& weights, size_t trim,
                      int64_t lo, int64_t hi, Tensor* out);

/// Weighted-median kernel; `total_weight` is the sum of `weights`.
void WeightedMedianRange(const std::vector<Tensor>& values,
                         const std::vector<double>& weights,
                         double total_weight, int64_t lo, int64_t hi,
                         Tensor* out);

/// Clipped-mean kernel of NormBoundedMean: out_i += scales[j] *
/// deltas[j]_i accumulated in j order; `out` must already hold the
/// reference model over [lo, hi).
void ClippedMeanRange(const std::vector<Tensor>& deltas,
                      const std::vector<float>& scales, int64_t lo,
                      int64_t hi, Tensor* out);

/// Phase 1 of NormBoundedMean: fills `deltas` with values - reference and
/// returns the per-update clip scales (weights normalized and clipped to
/// the median-norm bound), populating `report` if non-null. The flat rule
/// is this followed by ClippedMeanRange over [0, size).
std::vector<float> NormClipScales(const Tensor& reference,
                                  const std::vector<Tensor>& values,
                                  const std::vector<double>& weights,
                                  double clip_multiplier,
                                  std::vector<Tensor>* deltas,
                                  NormClipReport* report);

}  // namespace rfed

#endif  // RFED_FL_ROBUST_AGG_H_
