#include "fl/secure_agg.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace rfed {

SecureAggregator::SecureAggregator(int64_t dim, uint64_t session_seed,
                                   double mask_scale)
    : dim_(dim), session_seed_(session_seed), mask_scale_(mask_scale) {
  RFED_CHECK_GT(dim, 0);
}

Tensor SecureAggregator::PairMask(int a, int b) const {
  RFED_CHECK_NE(a, b);
  const int lo = std::min(a, b);
  const int hi = std::max(a, b);
  // Both parties derive the identical stream from the shared session
  // seed and the unordered pair id.
  Rng rng(session_seed_ ^
          (static_cast<uint64_t>(lo) * 0x1f123bb5ULL + static_cast<uint64_t>(hi)));
  return Tensor::Normal(Shape{dim_}, 0.0f, static_cast<float>(mask_scale_),
                        &rng);
}

Tensor SecureAggregator::Mask(int client, const Tensor& update,
                              const std::vector<int>& cohort) const {
  RFED_CHECK_EQ(update.size(), dim_);
  Tensor masked = update;
  bool member = false;
  for (int other : cohort) {
    if (other == client) {
      member = true;
      continue;
    }
    Tensor mask = PairMask(client, other);
    // Convention: the lower id adds, the higher id subtracts.
    masked.Axpy(client < other ? 1.0f : -1.0f, mask);
  }
  RFED_CHECK(member) << "client " << client << " not in cohort";
  return masked;
}

Tensor SecureAggregator::SumMasked(const std::vector<Tensor>& masked_uploads) {
  RFED_CHECK(!masked_uploads.empty());
  Tensor sum(masked_uploads[0].shape());
  for (const Tensor& upload : masked_uploads) sum.AddInPlace(upload);
  return sum;
}

}  // namespace rfed
