#include "fl/model_state.h"

#include <algorithm>

#include "util/check.h"

namespace rfed {

int64_t ParameterCount(const std::vector<Variable*>& params) {
  int64_t n = 0;
  for (Variable* p : params) n += p->value().size();
  return n;
}

Tensor FlattenParameters(const std::vector<Variable*>& params) {
  Tensor flat(Shape{ParameterCount(params)});
  int64_t offset = 0;
  for (Variable* p : params) {
    const Tensor& v = p->value();
    std::copy(v.data(), v.data() + v.size(), flat.data() + offset);
    offset += v.size();
  }
  return flat;
}

void LoadParameters(const Tensor& flat, const std::vector<Variable*>& params) {
  RFED_CHECK_EQ(flat.size(), ParameterCount(params));
  int64_t offset = 0;
  for (Variable* p : params) {
    Tensor& v = p->mutable_value();
    std::copy(flat.data() + offset, flat.data() + offset + v.size(), v.data());
    offset += v.size();
  }
}

Tensor FlattenGradients(const std::vector<Variable*>& params) {
  Tensor flat(Shape{ParameterCount(params)});
  int64_t offset = 0;
  for (Variable* p : params) {
    if (p->has_grad()) {
      const Tensor& g = p->grad();
      std::copy(g.data(), g.data() + g.size(), flat.data() + offset);
    }
    offset += p->value().size();
  }
  return flat;
}

void AddFlatToGradients(const Tensor& flat, double scale,
                        const std::vector<Variable*>& params) {
  RFED_CHECK_EQ(flat.size(), ParameterCount(params));
  const float s = static_cast<float>(scale);
  int64_t offset = 0;
  for (Variable* p : params) {
    Tensor& g = p->grad();  // allocates zeros on first touch
    for (int64_t i = 0; i < g.size(); ++i) {
      g.at(i) += s * flat.at(offset + i);
    }
    offset += g.size();
  }
}

void AddProximalToGradients(const Tensor& reference, double mu,
                            const std::vector<Variable*>& params) {
  RFED_CHECK_EQ(reference.size(), ParameterCount(params));
  const float m = static_cast<float>(mu);
  int64_t offset = 0;
  for (Variable* p : params) {
    Tensor& g = p->grad();
    const Tensor& w = p->value();
    for (int64_t i = 0; i < g.size(); ++i) {
      g.at(i) += m * (w.at(i) - reference.at(offset + i));
    }
    offset += g.size();
  }
}

int64_t StateBytes(const std::vector<Variable*>& params) {
  return ParameterCount(params) * static_cast<int64_t>(sizeof(float));
}

}  // namespace rfed
