#ifndef RFED_FL_CHECKPOINT_H_
#define RFED_FL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fl/metrics.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace rfed {

/// On-disk persistence for long simulations: flat model states round-trip
/// through the same wire codec the communication ledger charges, run
/// histories land as CSV for downstream plotting, and full run
/// checkpoints (model + per-algorithm server state + every RNG stream
/// position) make a killed run resumable *bit-identically* — the resumed
/// rounds reproduce the uninterrupted run's numbers byte for byte.
///
/// Every binary artifact carries a trailing FNV-1a checksum; loading a
/// truncated, extended, or bit-flipped file aborts with a clear message
/// instead of silently training from garbage.

/// Writes a flat model state (or any tensor) to `path`, followed by a
/// FNV-1a checksum footer. Aborts on I/O failure.
void SaveTensorToFile(const Tensor& tensor, const std::string& path);

/// Reads a tensor written by SaveTensorToFile, verifying the checksum.
/// Aborts on truncation, trailing bytes, or corruption.
Tensor LoadTensorFromFile(const std::string& path);

/// Writes a run history as CSV, one row per round: training/eval curves
/// (train_loss, test_accuracy), cost accounting (round_seconds,
/// round_bytes, peak_scratch_bytes), fault-channel delivery counts and
/// the sim runtime's latency columns. Non-finite values render as empty
/// cells in every float column (uniformly, so a NaN train loss from a
/// diverged or adversarial round never prints a literal "nan").
void SaveHistoryCsv(const RunHistory& history, const std::string& path);

/// Append-only binary encoder for checkpoint payloads. Fixed-width
/// little-endian-in-practice (host byte order; checkpoints are a
/// single-machine crash-recovery artifact, not an interchange format).
/// Doubles are written as raw IEEE bytes so NaN payloads (e.g. the
/// never-trained markers in the selection state) round-trip exactly.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::vector<uint8_t>* out) : out_(out) {}

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof v); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof v); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof v); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof v); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof v); }
  void WriteBool(bool v) { WriteU32(v ? 1u : 0u); }
  void WriteString(const std::string& s);
  void WriteTensor(const Tensor& t);
  void WriteRng(const RngState& s);

 private:
  void WriteRaw(const void* data, size_t bytes);

  std::vector<uint8_t>* out_;
};

/// Bounds-checked decoder matching CheckpointWriter. Every read aborts
/// (RFED_CHECK) rather than running past the end of a truncated buffer.
class CheckpointReader {
 public:
  explicit CheckpointReader(const std::vector<uint8_t>& buffer)
      : buffer_(&buffer) {}

  uint32_t ReadU32();
  uint64_t ReadU64();
  int32_t ReadI32();
  int64_t ReadI64();
  double ReadDouble();
  bool ReadBool() { return ReadU32() != 0; }
  std::string ReadString();
  Tensor ReadTensor();
  RngState ReadRng();

  size_t remaining() const { return buffer_->size() - cursor_; }
  bool AtEnd() const { return cursor_ == buffer_->size(); }

 private:
  void ReadRaw(void* data, size_t bytes);

  const std::vector<uint8_t>* buffer_;
  size_t cursor_ = 0;
};

/// A round-granular snapshot of an entire federated run: how many rounds
/// completed, the history recorded so far, and the algorithm's full
/// mutable state (model, server buffers, every RNG stream) as an opaque
/// blob produced by FederatedAlgorithm::SaveRunState. Written atomically
/// enough for crash recovery (single write) with a magic, a format
/// version, and a trailing FNV-1a checksum over everything before it.
struct RunCheckpoint {
  int next_round = 0;  ///< first round the resumed run should execute
  RunHistory history;  ///< rounds [0, next_round) as already recorded
  std::vector<uint8_t> algorithm_state;  ///< opaque SaveRunState blob

  /// Serializes to `path`. Aborts on I/O failure.
  void Save(const std::string& path) const;

  /// Reads a checkpoint written by Save, verifying magic, version, and
  /// checksum. Aborts on any corruption (truncation, trailing bytes,
  /// bit flips).
  static RunCheckpoint Load(const std::string& path);
};

}  // namespace rfed

#endif  // RFED_FL_CHECKPOINT_H_
