#ifndef RFED_FL_CHECKPOINT_H_
#define RFED_FL_CHECKPOINT_H_

#include <string>

#include "fl/metrics.h"
#include "tensor/tensor.h"

namespace rfed {

/// On-disk persistence for long simulations: flat model states round-trip
/// through the same wire codec the communication ledger charges, and run
/// histories land as CSV for downstream plotting.

/// Writes a flat model state (or any tensor) to `path`. Aborts on I/O
/// failure.
void SaveTensorToFile(const Tensor& tensor, const std::string& path);

/// Reads a tensor written by SaveTensorToFile.
Tensor LoadTensorFromFile(const std::string& path);

/// Writes a run history as CSV, one row per round: training/eval curves
/// (train_loss, test_accuracy), cost accounting (round_seconds,
/// round_bytes, peak_scratch_bytes), fault-channel delivery counts and
/// the sim runtime's latency columns.
void SaveHistoryCsv(const RunHistory& history, const std::string& path);

}  // namespace rfed

#endif  // RFED_FL_CHECKPOINT_H_
