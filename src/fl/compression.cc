#include "fl/compression.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/string_util.h"

namespace rfed {
namespace {

uint64_t HashMix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

StochasticQuantizer::StochasticQuantizer(int bits) : bits_(bits) {
  RFED_CHECK_GE(bits, 1);
  RFED_CHECK_LE(bits, 16);
}

std::string StochasticQuantizer::Name() const {
  return StrFormat("q%d", bits_);
}

Tensor StochasticQuantizer::RoundTrip(const Tensor& update, Rng* rng) {
  const float max_abs = update.MaxAbs();
  if (max_abs == 0.0f) return update;
  const int levels = (1 << bits_) - 1;
  const float scale = max_abs / static_cast<float>(levels);
  Tensor out = update;
  for (int64_t i = 0; i < out.size(); ++i) {
    const float normalized = out.at(i) / scale;  // in [-levels, levels]
    const float floor_v = std::floor(normalized);
    // Stochastic rounding keeps the quantizer unbiased.
    const float frac = normalized - floor_v;
    const float q = floor_v + (rng->Uniform() < frac ? 1.0f : 0.0f);
    out.at(i) = q * scale;
  }
  return out;
}

int64_t StochasticQuantizer::WireBytes(int64_t n) const {
  // bits_+1 bits per element (sign embedded in the level) plus the scale.
  const int64_t payload_bits = n * (bits_ + 1);
  return (payload_bits + 7) / 8 + 4;
}

TopKSparsifier::TopKSparsifier(double fraction) : fraction_(fraction) {
  RFED_CHECK_GT(fraction, 0.0);
  RFED_CHECK_LE(fraction, 1.0);
}

std::string TopKSparsifier::Name() const {
  return StrFormat("topk%.0f", 100.0 * fraction_);
}

Tensor TopKSparsifier::RoundTrip(const Tensor& update, Rng* rng) {
  const int64_t n = update.size();
  const int64_t k = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(fraction_ * static_cast<double>(n))));
  if (k >= n) return update;
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::nth_element(order.begin(), order.begin() + k, order.end(),
                   [&update](int64_t a, int64_t b) {
                     return std::fabs(update.at(a)) > std::fabs(update.at(b));
                   });
  Tensor out(update.shape());
  for (int64_t i = 0; i < k; ++i) {
    const int64_t idx = order[static_cast<size_t>(i)];
    out.at(idx) = update.at(idx);
  }
  return out;
}

int64_t TopKSparsifier::WireBytes(int64_t n) const {
  const int64_t k = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(fraction_ * static_cast<double>(n))));
  return 8 * std::min(k, n);  // 4-byte index + 4-byte value each
}

CountSketchCompressor::CountSketchCompressor(int rows, int64_t width,
                                             uint64_t seed)
    : rows_(rows), width_(width), seed_(seed) {
  RFED_CHECK_GE(rows, 1);
  RFED_CHECK_GE(width, 1);
}

std::string CountSketchCompressor::Name() const { return "sketch"; }

Tensor CountSketchCompressor::RoundTrip(const Tensor& update, Rng* rng) {
  const int64_t n = update.size();
  std::vector<float> table(static_cast<size_t>(rows_) *
                           static_cast<size_t>(width_), 0.0f);
  auto bucket = [this](int row, int64_t i) {
    return static_cast<int64_t>(
        HashMix(seed_ + static_cast<uint64_t>(row) * 0x9e3779b9ULL +
                static_cast<uint64_t>(i)) %
        static_cast<uint64_t>(width_));
  };
  auto sign = [this](int row, int64_t i) {
    return (HashMix(seed_ * 31 + static_cast<uint64_t>(row) +
                    static_cast<uint64_t>(i) * 0x85ebca6bULL) &
            1ULL) != 0
               ? 1.0f
               : -1.0f;
  };
  // Encode.
  for (int64_t i = 0; i < n; ++i) {
    for (int r = 0; r < rows_; ++r) {
      table[static_cast<size_t>(r) * static_cast<size_t>(width_) +
            static_cast<size_t>(bucket(r, i))] += sign(r, i) * update.at(i);
    }
  }
  // Decode: median over rows of the signed counters.
  Tensor out(update.shape());
  std::vector<float> estimates(static_cast<size_t>(rows_));
  for (int64_t i = 0; i < n; ++i) {
    for (int r = 0; r < rows_; ++r) {
      estimates[static_cast<size_t>(r)] =
          sign(r, i) *
          table[static_cast<size_t>(r) * static_cast<size_t>(width_) +
                static_cast<size_t>(bucket(r, i))];
    }
    std::nth_element(estimates.begin(),
                     estimates.begin() + rows_ / 2, estimates.end());
    out.at(i) = estimates[static_cast<size_t>(rows_ / 2)];
  }
  return out;
}

int64_t CountSketchCompressor::WireBytes(int64_t n) const {
  return 4 * static_cast<int64_t>(rows_) * width_;
}

std::unique_ptr<UpdateCompressor> MakeCompressor(const std::string& name) {
  if (name == "none") return std::make_unique<NoCompression>();
  if (name == "q8") return std::make_unique<StochasticQuantizer>(8);
  if (name == "q4") return std::make_unique<StochasticQuantizer>(4);
  if (name == "topk10") return std::make_unique<TopKSparsifier>(0.10);
  if (name == "topk1") return std::make_unique<TopKSparsifier>(0.01);
  if (name == "sketch") {
    return std::make_unique<CountSketchCompressor>(5, 2048, 12345);
  }
  RFED_CHECK(false) << "unknown compressor " << name;
  return nullptr;
}

}  // namespace rfed
