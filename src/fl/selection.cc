#include "fl/selection.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/check.h"

namespace rfed {

std::vector<int> UniformSelection(int num_clients, int cohort_size,
                                  Rng* rng) {
  RFED_CHECK_GE(num_clients, cohort_size);
  if (cohort_size == num_clients) {
    std::vector<int> all(static_cast<size_t>(num_clients));
    for (int i = 0; i < num_clients; ++i) all[static_cast<size_t>(i)] = i;
    return all;
  }
  return rng->SampleWithoutReplacement(num_clients, cohort_size);
}

std::vector<int> SparseUniformSelection(int num_clients, int cohort_size,
                                        Rng* rng) {
  RFED_CHECK_GE(num_clients, cohort_size);
  std::vector<int> selected;
  selected.reserve(static_cast<size_t>(cohort_size));
  if (cohort_size == num_clients) {
    for (int i = 0; i < num_clients; ++i) selected.push_back(i);
    return selected;
  }
  // Floyd's sampling: for j in [n-k, n), draw t in [0, j]; take t unless
  // already taken, else take j. Every k-subset is equally likely.
  std::unordered_set<int> taken;
  taken.reserve(static_cast<size_t>(cohort_size) * 2);
  for (int j = num_clients - cohort_size; j < num_clients; ++j) {
    const int t = rng->UniformInt(j + 1);
    const int pick = taken.insert(t).second ? t : j;
    if (pick == j) taken.insert(j);
    selected.push_back(pick);
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

std::vector<int> LossProportionalSelection(
    const std::vector<double>& last_losses, int cohort_size, Rng* rng) {
  const int n = static_cast<int>(last_losses.size());
  RFED_CHECK_GE(n, cohort_size);
  // Build sampling weights; unknown losses get the mean of known ones.
  double known_sum = 0.0;
  int known = 0;
  for (double loss : last_losses) {
    if (std::isfinite(loss) && loss > 0.0) {
      known_sum += loss;
      ++known;
    }
  }
  const double fallback = known > 0 ? known_sum / known : 1.0;
  std::vector<double> weights(static_cast<size_t>(n));
  int64_t nonfinite = 0;
  for (int i = 0; i < n; ++i) {
    const double loss = last_losses[static_cast<size_t>(i)];
    const bool usable = std::isfinite(loss) && loss > 0.0;
    if (!std::isfinite(loss)) ++nonfinite;
    weights[static_cast<size_t>(i)] = usable ? loss : fallback;
  }
  if (nonfinite > 0) {
    // A diverged (or adversarial) client reports a NaN/Inf loss; the
    // fallback weight keeps sampling well-defined, but the substitution
    // must be visible, not silently masked.
    obs::MetricsRegistry::Get()
        .GetCounter("fl.nonfinite_loss")
        ->Add(nonfinite);
  }
  // Weighted sampling without replacement (sequential draws).
  std::vector<int> selected;
  selected.reserve(static_cast<size_t>(cohort_size));
  std::vector<bool> taken(static_cast<size_t>(n), false);
  for (int draw = 0; draw < cohort_size; ++draw) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      if (!taken[static_cast<size_t>(i)]) total += weights[static_cast<size_t>(i)];
    }
    double target = rng->Uniform() * total;
    int pick = -1;
    for (int i = 0; i < n; ++i) {
      if (taken[static_cast<size_t>(i)]) continue;
      target -= weights[static_cast<size_t>(i)];
      pick = i;
      if (target <= 0.0) break;
    }
    RFED_CHECK_GE(pick, 0);
    taken[static_cast<size_t>(pick)] = true;
    selected.push_back(pick);
  }
  return selected;
}

}  // namespace rfed
