#ifndef RFED_FL_COMPRESSION_H_
#define RFED_FL_COMPRESSION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace rfed {

/// Lossy update compressors for the client->server direction, the family
/// of communication-efficiency techniques the paper cites as orthogonal
/// related work (Konecny et al. quantization; FetchSGD-style sketches).
/// A compressor maps a flat update to a (smaller) wire representation and
/// back; WireBytes is what the communication ledger charges.
///
/// Compressors are applied to the client's *delta* (new_state - global)
/// rather than the raw state, which keeps the error magnitude small and
/// makes plain averaging of decompressed deltas meaningful.
class UpdateCompressor {
 public:
  virtual ~UpdateCompressor() = default;

  virtual std::string Name() const = 0;

  /// Returns the reconstruction of `update` after the lossy round trip.
  virtual Tensor RoundTrip(const Tensor& update, Rng* rng) = 0;

  /// Bytes the compressed form of an `n`-element update puts on the wire.
  virtual int64_t WireBytes(int64_t n) const = 0;
};

/// Identity (no compression): 4 bytes/element.
class NoCompression : public UpdateCompressor {
 public:
  std::string Name() const override { return "none"; }
  Tensor RoundTrip(const Tensor& update, Rng* rng) override { return update; }
  int64_t WireBytes(int64_t n) const override { return 4 * n; }
};

/// Stochastic uniform quantization to `bits` bits per element with a
/// per-tensor scale (QSGD-style). Unbiased: E[decode(encode(x))] = x.
class StochasticQuantizer : public UpdateCompressor {
 public:
  explicit StochasticQuantizer(int bits);
  std::string Name() const override;  ///< "q<bits>", e.g. "q8"
  Tensor RoundTrip(const Tensor& update, Rng* rng) override;
  /// bits+1 bits per element (sign embedded in the level), rounded up to
  /// whole bytes, plus 4 bytes for the per-tensor scale.
  int64_t WireBytes(int64_t n) const override;

 private:
  int bits_;
};

/// Magnitude top-k sparsification: keeps the `fraction` largest-|x|
/// coordinates, zeroes the rest. Wire cost: 8 bytes (index + value) per
/// kept coordinate.
class TopKSparsifier : public UpdateCompressor {
 public:
  /// `fraction` in (0, 1]: 0.1 keeps the top 10% (at least 1 element).
  explicit TopKSparsifier(double fraction);
  std::string Name() const override;  ///< "topk<percent>", e.g. "topk10"
  Tensor RoundTrip(const Tensor& update, Rng* rng) override;
  int64_t WireBytes(int64_t n) const override;

 private:
  double fraction_;
};

/// Count-sketch compressor (FetchSGD-style): the update is hashed into
/// `rows` x `width` counters with random signs; decoding takes the median
/// of the signed counters per coordinate. Unbiased with variance
/// controlled by width.
class CountSketchCompressor : public UpdateCompressor {
 public:
  /// `seed` keys the hash/sign functions; both sides must share it. The
  /// sketch size (and wire cost) is rows x width counters regardless of n.
  CountSketchCompressor(int rows, int64_t width, uint64_t seed);
  std::string Name() const override;  ///< "sketch"
  Tensor RoundTrip(const Tensor& update, Rng* rng) override;
  int64_t WireBytes(int64_t n) const override;  ///< 4 * rows * width

 private:
  int rows_;
  int64_t width_;
  uint64_t seed_;
};

/// Factory by name: "none", "q8", "q4", "topk10", "topk1", "sketch"
/// (the values FlConfig::upload_compressor and the CLI's --compressor
/// accept). Aborts on an unknown name.
std::unique_ptr<UpdateCompressor> MakeCompressor(const std::string& name);

}  // namespace rfed

#endif  // RFED_FL_COMPRESSION_H_
