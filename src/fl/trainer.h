#ifndef RFED_FL_TRAINER_H_
#define RFED_FL_TRAINER_H_

#include <atomic>
#include <string>
#include <vector>

#include "fl/algorithm.h"
#include "fl/metrics.h"

namespace rfed {

struct RunCheckpoint;

/// Options of the simulation driver (evaluation cadence and sizes).
struct TrainerOptions {
  int eval_every = 1;            ///< evaluate the global model every k rounds
  int64_t eval_max_examples = 1024;  ///< test subsample cap (0 = all)
  int eval_batch_size = 64;
  bool verbose = false;          ///< log each evaluated round
  /// Crash recovery: write a RunCheckpoint to `checkpoint_path` every k
  /// completed rounds (0 = never). Resuming from such a file reproduces
  /// the uninterrupted run bit-for-bit.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  /// Graceful shutdown (rfed_server's SIGTERM path): when non-null and set,
  /// the trainer finishes the round in flight, writes a final checkpoint to
  /// `checkpoint_path` (if configured), and returns the history so far.
  /// Resuming that checkpoint reproduces the uninterrupted run bit-for-bit.
  const std::atomic<bool>* stop_requested = nullptr;
};

/// Drives a federated algorithm for C rounds against a held-out test set
/// and records the loss/accuracy/time/traffic history behind the paper's
/// curves and tables.
class FederatedTrainer {
 public:
  FederatedTrainer(FederatedAlgorithm* algorithm, const Dataset* test_data,
                   const TrainerOptions& options);

  /// Runs `rounds` communication rounds; returns the full history. If
  /// `resume` is non-null the algorithm state is restored from it and
  /// training continues at `resume->next_round` with the checkpointed
  /// history prefix already in place.
  RunHistory Run(int rounds, const RunCheckpoint* resume = nullptr);

  /// Accuracy of the current global model on the (subsampled) test set.
  double EvaluateGlobal();

  /// Accuracy of the current global model on each client's private test
  /// slice (requires ClientView::test_indices); drives the fairness
  /// evaluation (Fig. 11). Clients without a test slice get NaN.
  std::vector<double> PerClientAccuracy(const Dataset* client_test_data,
                                        const std::vector<ClientView>& views);

 private:
  double EvaluateOn(const Dataset* data, const std::vector<int>& indices);

  FederatedAlgorithm* algorithm_;
  const Dataset* test_data_;
  TrainerOptions options_;
  std::vector<int> eval_indices_;
};

}  // namespace rfed

#endif  // RFED_FL_TRAINER_H_
