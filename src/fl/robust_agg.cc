#include "fl/robust_agg.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace rfed {

namespace {

/// Shared shape/weight validation of the aggregation rules.
void CheckInputs(const std::vector<Tensor>& values,
                 const std::vector<double>& weights) {
  RFED_CHECK(!values.empty());
  RFED_CHECK_EQ(values.size(), weights.size());
  for (const Tensor& v : values) {
    RFED_CHECK_EQ(v.size(), values[0].size());
  }
  for (double w : weights) RFED_CHECK_GE(w, 0.0);
}

/// Median of an unsorted sample (sorts a copy; even count averages the
/// middle pair).
double MedianOf(std::vector<double> sample) {
  RFED_CHECK(!sample.empty());
  std::sort(sample.begin(), sample.end());
  const size_t m = sample.size();
  return m % 2 == 1 ? sample[m / 2]
                    : 0.5 * (sample[m / 2 - 1] + sample[m / 2]);
}

}  // namespace

bool KnownAggregator(const std::string& name) {
  return name == "mean" || name == "trimmed_mean" || name == "median" ||
         name == "norm_clip";
}

bool AllFinite(const Tensor& t) {
  const float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

size_t ResolveTrimCount(double trim_fraction, size_t m) {
  size_t trim = static_cast<size_t>(std::floor(trim_fraction *
                                               static_cast<double>(m)));
  // Keep at least one sample; an over-aggressive trim degrades to the
  // (per-coordinate) median-of-the-middle.
  if (2 * trim >= m) trim = (m - 1) / 2;
  return trim;
}

void TrimmedMeanRange(const std::vector<Tensor>& values,
                      const std::vector<double>& weights, size_t trim,
                      int64_t lo, int64_t hi, Tensor* out) {
  const size_t m = values.size();
  std::vector<std::pair<float, double>> sample(m);  // (value, weight)
  for (int64_t i = lo; i < hi; ++i) {
    for (size_t j = 0; j < m; ++j) {
      sample[j] = {values[j].at(i), weights[j]};
    }
    std::sort(sample.begin(), sample.end());
    double num = 0.0, den = 0.0;
    for (size_t j = trim; j < m - trim; ++j) {
      num += static_cast<double>(sample[j].first) * sample[j].second;
      den += sample[j].second;
    }
    // All kept weights zero (possible when the trim keeps only
    // zero-weight updates): fall back to the unweighted mean of the kept
    // values rather than dividing by zero.
    if (den <= 0.0) {
      for (size_t j = trim; j < m - trim; ++j) {
        num += static_cast<double>(sample[j].first);
        den += 1.0;
      }
    }
    out->at(i) = static_cast<float>(num / den);
  }
}

Tensor CoordinateTrimmedMean(const std::vector<Tensor>& values,
                             const std::vector<double>& weights,
                             double trim_fraction) {
  CheckInputs(values, weights);
  RFED_CHECK_GE(trim_fraction, 0.0);
  RFED_CHECK_LT(trim_fraction, 0.5);
  const size_t trim = ResolveTrimCount(trim_fraction, values.size());
  Tensor out(values[0].shape());
  TrimmedMeanRange(values, weights, trim, 0, out.size(), &out);
  return out;
}

void WeightedMedianRange(const std::vector<Tensor>& values,
                         const std::vector<double>& weights,
                         double total_weight, int64_t lo, int64_t hi,
                         Tensor* out) {
  const size_t m = values.size();
  std::vector<std::pair<float, double>> sample(m);
  for (int64_t i = lo; i < hi; ++i) {
    for (size_t j = 0; j < m; ++j) {
      sample[j] = {values[j].at(i), weights[j]};
    }
    std::sort(sample.begin(), sample.end());
    // Weighted median: first value whose cumulative weight reaches half.
    double cum = 0.0;
    float median = sample[m - 1].first;
    for (size_t j = 0; j < m; ++j) {
      cum += sample[j].second;
      if (cum >= 0.5 * total_weight) {
        median = sample[j].first;
        break;
      }
    }
    out->at(i) = median;
  }
}

Tensor CoordinateMedian(const std::vector<Tensor>& values,
                        const std::vector<double>& weights) {
  CheckInputs(values, weights);
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  RFED_CHECK_GT(total_weight, 0.0);
  Tensor out(values[0].shape());
  WeightedMedianRange(values, weights, total_weight, 0, out.size(), &out);
  return out;
}

std::vector<float> NormClipScales(const Tensor& reference,
                                  const std::vector<Tensor>& values,
                                  const std::vector<double>& weights,
                                  double clip_multiplier,
                                  std::vector<Tensor>* deltas,
                                  NormClipReport* report) {
  CheckInputs(values, weights);
  RFED_CHECK_GT(clip_multiplier, 0.0);
  RFED_CHECK_EQ(reference.size(), values[0].size());
  const size_t m = values.size();

  deltas->clear();
  deltas->reserve(m);
  std::vector<double> norms(m);
  for (size_t j = 0; j < m; ++j) {
    Tensor d = values[j];
    d.SubInPlace(reference);
    norms[j] = std::sqrt(static_cast<double>(d.SquaredNorm()));
    deltas->push_back(std::move(d));
  }
  const double median_norm = MedianOf(norms);
  const double bound = clip_multiplier * median_norm;

  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;
  RFED_CHECK_GT(weight_sum, 0.0);

  int clipped = 0;
  std::vector<float> scales(m);
  for (size_t j = 0; j < m; ++j) {
    double scale = weights[j] / weight_sum;
    // bound == 0 (median norm zero, e.g. a cohort of no-op updates)
    // clips every nonzero delta to nothing rather than dividing by zero.
    if (norms[j] > bound) {
      ++clipped;
      scale *= norms[j] > 0.0 ? bound / norms[j] : 0.0;
    }
    scales[j] = static_cast<float>(scale);
  }
  if (report != nullptr) {
    report->clipped = clipped;
    report->median_norm = median_norm;
    report->bound = bound;
    report->norms = std::move(norms);
  }
  return scales;
}

void ClippedMeanRange(const std::vector<Tensor>& deltas,
                      const std::vector<float>& scales, int64_t lo,
                      int64_t hi, Tensor* out) {
  // Per coordinate this accumulates out_i += scales[j] * deltas[j]_i in j
  // order — the same float-op sequence as the flat rule's Axpy loop, so
  // any [lo, hi) partition of the coordinates is byte-identical to it.
  const size_t m = deltas.size();
  float* o = out->data();
  for (size_t j = 0; j < m; ++j) {
    const float s = scales[j];
    const float* d = deltas[j].data();
    for (int64_t i = lo; i < hi; ++i) {
      o[i] += s * d[i];
    }
  }
}

Tensor NormBoundedMean(const Tensor& reference,
                       const std::vector<Tensor>& values,
                       const std::vector<double>& weights,
                       double clip_multiplier, NormClipReport* report) {
  std::vector<Tensor> deltas;
  const std::vector<float> scales = NormClipScales(
      reference, values, weights, clip_multiplier, &deltas, report);
  Tensor out = reference;
  ClippedMeanRange(deltas, scales, 0, out.size(), &out);
  return out;
}

}  // namespace rfed
