#include "fl/metrics.h"

#include <cmath>

#include "util/check.h"

namespace rfed {

double RunHistory::FinalAccuracy() const {
  for (auto it = rounds.rbegin(); it != rounds.rend(); ++it) {
    if (!std::isnan(it->test_accuracy)) return it->test_accuracy;
  }
  RFED_CHECK(false) << "no evaluated round in history";
  return 0.0;
}

double RunHistory::BestAccuracy() const {
  double best = 0.0;
  for (const auto& r : rounds) {
    if (!std::isnan(r.test_accuracy)) best = std::max(best, r.test_accuracy);
  }
  return best;
}

int RunHistory::RoundsToReach(double target) const {
  for (const auto& r : rounds) {
    if (!std::isnan(r.test_accuracy) && r.test_accuracy >= target) {
      return r.round + 1;
    }
  }
  return -1;
}

double RunHistory::MeanRoundSeconds() const {
  if (rounds.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : rounds) total += r.round_seconds;
  return total / static_cast<double>(rounds.size());
}

int64_t RunHistory::TotalBytes() const {
  int64_t total = 0;
  for (const auto& r : rounds) total += r.round_bytes;
  return total;
}

int64_t RunHistory::TotalDelivered() const {
  int64_t total = 0;
  for (const auto& r : rounds) total += r.delivered_messages;
  return total;
}

int64_t RunHistory::TotalDropped() const {
  int64_t total = 0;
  for (const auto& r : rounds) total += r.dropped_messages;
  return total;
}

int64_t RunHistory::TotalRetried() const {
  int64_t total = 0;
  for (const auto& r : rounds) total += r.retried_messages;
  return total;
}

double RunHistory::TotalVirtualMs() const {
  double total = 0.0;
  for (const auto& r : rounds) total += r.virtual_ms;
  return total;
}

double RunHistory::VirtualMsToReachLoss(double target) const {
  double elapsed = 0.0;
  for (const auto& r : rounds) {
    elapsed += r.virtual_ms;
    if (r.train_loss <= target) return elapsed;
  }
  return -1.0;
}

int64_t RunHistory::TotalStragglersCut() const {
  int64_t total = 0;
  for (const auto& r : rounds) total += r.stragglers_cut;
  return total;
}

int64_t RunHistory::PeakKernelScratchBytes() const {
  int64_t peak = 0;
  for (const auto& r : rounds) peak = std::max(peak, r.peak_scratch_bytes);
  return peak;
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  RFED_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  const double mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  return MeanStd{mean, std::sqrt(var)};
}

}  // namespace rfed
