#include "fl/fednova.h"

#include <algorithm>

#include "util/check.h"

namespace rfed {

FedNova::FedNova(const FlConfig& config, int max_local_steps,
                 const Dataset* train_data, std::vector<ClientView> clients,
                 const ModelFactory& model_factory)
    : FederatedAlgorithm("FedNova", config, train_data, std::move(clients),
                         model_factory),
      max_local_steps_(max_local_steps) {
  RFED_CHECK_GE(max_local_steps_, 1);
}

int FedNova::LocalSteps(int client) const {
  // One local epoch: ceil(n_k / B), capped.
  const int64_t n =
      static_cast<int64_t>(client_view(client).train_indices.size());
  const int64_t steps = (n + config().batch_size - 1) / config().batch_size;
  return static_cast<int>(
      std::clamp<int64_t>(steps, 1, max_local_steps_));
}

void FedNova::Aggregate(int round, const std::vector<int>& selected,
                        const std::vector<Tensor>& new_states,
                        const std::vector<double>& start_losses) {
  double weight_sum = 0.0;
  for (int k : selected) weight_sum += weights()[static_cast<size_t>(k)];
  RFED_CHECK_GT(weight_sum, 0.0);

  if (!config().robust.mean()) {
    // Robust variant: combine the per-step updates d_k = (x - y_k)/tau_k
    // robustly under the survivors' p_k weights (reference zero for the
    // norm bound — d_k is already a delta), then apply the same
    // tau_eff-scaled server step.
    std::vector<Tensor> normalized;
    normalized.reserve(selected.size());
    double tau_eff = 0.0;
    for (size_t i = 0; i < selected.size(); ++i) {
      const int k = selected[i];
      const double pk = weights()[static_cast<size_t>(k)] / weight_sum;
      const double tau = static_cast<double>(LocalSteps(k));
      tau_eff += pk * tau;
      Tensor d = global_state();
      d.SubInPlace(new_states[i]);  // x - y_k
      d.MulInPlace(static_cast<float>(1.0 / tau));
      normalized.push_back(std::move(d));
    }
    Tensor combined =
        RobustCombine(selected, normalized, Tensor(global_state().shape()));
    Tensor next = global_state();
    next.Axpy(static_cast<float>(-tau_eff), combined);
    SetGlobalState(std::move(next));
    return;
  }

  // Normalized average of per-step updates and the effective step count.
  Tensor normalized(global_state().shape());
  double tau_eff = 0.0;
  for (size_t i = 0; i < selected.size(); ++i) {
    const int k = selected[i];
    const double pk = weights()[static_cast<size_t>(k)] / weight_sum;
    const double tau = static_cast<double>(LocalSteps(k));
    tau_eff += pk * tau;
    Tensor delta = global_state();
    delta.SubInPlace(new_states[i]);  // x - y_k
    normalized.Axpy(static_cast<float>(pk / tau), delta);
  }
  Tensor next = global_state();
  next.Axpy(static_cast<float>(-tau_eff), normalized);
  SetGlobalState(std::move(next));
}

}  // namespace rfed
