#include "fl/fedavgm.h"

#include "fl/checkpoint.h"
#include "util/check.h"

namespace rfed {

FedAvgM::FedAvgM(const FlConfig& config, double server_momentum,
                 const Dataset* train_data, std::vector<ClientView> clients,
                 const ModelFactory& model_factory)
    : FederatedAlgorithm("FedAvgM", config, train_data, std::move(clients),
                         model_factory),
      beta_(server_momentum),
      momentum_(global_state().shape()) {
  RFED_CHECK_GE(beta_, 0.0);
  RFED_CHECK_LT(beta_, 1.0);
}

void FedAvgM::Aggregate(int round, const std::vector<int>& selected,
                        const std::vector<Tensor>& new_states,
                        const std::vector<double>& start_losses) {
  if (!config().robust.mean()) {
    // Robust variant: combine the survivors' models robustly and feed
    // the resulting displacement into the same momentum update.
    Tensor combined = RobustCombine(selected, new_states, global_state());
    Tensor pseudo_grad = global_state();
    pseudo_grad.SubInPlace(combined);
    momentum_.MulInPlace(static_cast<float>(beta_));
    momentum_.AddInPlace(pseudo_grad);
    Tensor next = global_state();
    next.Axpy(-1.0f, momentum_);
    SetGlobalState(std::move(next));
    return;
  }
  double weight_sum = 0.0;
  for (int k : selected) weight_sum += weights()[static_cast<size_t>(k)];
  RFED_CHECK_GT(weight_sum, 0.0);

  // Pseudo-gradient: x - avg_k y_k.
  Tensor pseudo_grad = global_state();
  for (size_t i = 0; i < selected.size(); ++i) {
    const double w =
        weights()[static_cast<size_t>(selected[i])] / weight_sum;
    pseudo_grad.Axpy(static_cast<float>(-w), new_states[i]);
  }
  momentum_.MulInPlace(static_cast<float>(beta_));
  momentum_.AddInPlace(pseudo_grad);
  Tensor next = global_state();
  next.Axpy(-1.0f, momentum_);
  SetGlobalState(std::move(next));
}

void FedAvgM::SaveExtraState(CheckpointWriter* writer) const {
  writer->WriteTensor(momentum_);
}

void FedAvgM::LoadExtraState(CheckpointReader* reader) {
  Tensor m = reader->ReadTensor();
  RFED_CHECK_EQ(m.size(), momentum_.size());
  momentum_ = std::move(m);
}

}  // namespace rfed
