#ifndef RFED_FL_FEDAVG_H_
#define RFED_FL_FEDAVG_H_

#include "fl/algorithm.h"

namespace rfed {

/// Vanilla Federated Averaging (McMahan et al., AISTATS'17): E local
/// SGD steps per sampled client, weighted parameter average at the
/// server. This is exactly the FederatedAlgorithm skeleton with no
/// hooks; under an unreliable channel (FlConfig::fault) the skeleton's
/// aggregation renormalizes the p_k over whichever clients' updates
/// actually arrive, so FedAvg is dropout-tolerant for free.
class FedAvg : public FederatedAlgorithm {
 public:
  FedAvg(const FlConfig& config, const Dataset* train_data,
         std::vector<ClientView> clients, const ModelFactory& model_factory)
      : FederatedAlgorithm("FedAvg", config, train_data, std::move(clients),
                           model_factory) {}

  /// Pool-mode (cross-device scale) constructor: client views are lazy
  /// seeded slices of `pool`, materialized per sampled cohort. The pool
  /// must outlive the algorithm.
  FedAvg(const FlConfig& config, const ClientPool* pool,
         const ModelFactory& model_factory)
      : FederatedAlgorithm("FedAvg", config, pool, model_factory) {}
};

}  // namespace rfed

#endif  // RFED_FL_FEDAVG_H_
