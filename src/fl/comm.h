#ifndef RFED_FL_COMM_H_
#define RFED_FL_COMM_H_

#include <cstdint>

namespace rfed {

/// Byte-exact accounting of the simulated server<->client traffic.
/// Every algorithm charges each transfer it would make on a real
/// deployment; Table III and the communication-efficiency claims are
/// read straight off these counters.
class CommStats {
 public:
  /// Server -> client transfer.
  void Download(int64_t bytes) {
    total_down_bytes_ += bytes;
    round_down_bytes_ += bytes;
    ++down_messages_;
    ++round_down_messages_;
  }

  /// Client -> server transfer.
  void Upload(int64_t bytes) {
    total_up_bytes_ += bytes;
    round_up_bytes_ += bytes;
    ++up_messages_;
    ++round_up_messages_;
  }

  /// Framed-transport overhead (length prefix + header + checksum) that
  /// crossed the wire on top of the payload bytes. Kept out of the
  /// Download/Upload payload counters so Table III reads pure payload
  /// traffic; the framing cost is still visible, just on its own line.
  void AddWireOverhead(int64_t bytes) {
    total_wire_overhead_bytes_ += bytes;
    round_wire_overhead_bytes_ += bytes;
  }

  /// Resets the per-round counters (call at round start). Cumulative
  /// totals are unaffected; both byte *and* message counters reset.
  void BeginRound() {
    round_down_bytes_ = 0;
    round_up_bytes_ = 0;
    round_down_messages_ = 0;
    round_up_messages_ = 0;
    round_wire_overhead_bytes_ = 0;
  }

  int64_t total_down_bytes() const { return total_down_bytes_; }
  int64_t total_up_bytes() const { return total_up_bytes_; }
  int64_t total_bytes() const { return total_down_bytes_ + total_up_bytes_; }
  int64_t round_down_bytes() const { return round_down_bytes_; }
  int64_t round_up_bytes() const { return round_up_bytes_; }
  int64_t round_bytes() const { return round_down_bytes_ + round_up_bytes_; }
  int64_t down_messages() const { return down_messages_; }
  int64_t up_messages() const { return up_messages_; }
  int64_t round_down_messages() const { return round_down_messages_; }
  int64_t round_up_messages() const { return round_up_messages_; }
  int64_t round_messages() const {
    return round_down_messages_ + round_up_messages_;
  }
  int64_t wire_overhead_bytes() const { return total_wire_overhead_bytes_; }
  int64_t round_wire_overhead_bytes() const {
    return round_wire_overhead_bytes_;
  }

  /// Restores the cumulative totals from a checkpoint. Per-round
  /// counters are not restored: a resumed run always continues at a
  /// round boundary, where BeginRound() zeroes them anyway.
  void Restore(int64_t down_bytes, int64_t up_bytes, int64_t down_msgs,
               int64_t up_msgs, int64_t wire_overhead_bytes) {
    total_down_bytes_ = down_bytes;
    total_up_bytes_ = up_bytes;
    down_messages_ = down_msgs;
    up_messages_ = up_msgs;
    total_wire_overhead_bytes_ = wire_overhead_bytes;
    BeginRound();
  }

 private:
  int64_t total_down_bytes_ = 0;
  int64_t total_up_bytes_ = 0;
  int64_t round_down_bytes_ = 0;
  int64_t round_up_bytes_ = 0;
  int64_t down_messages_ = 0;
  int64_t up_messages_ = 0;
  int64_t round_down_messages_ = 0;
  int64_t round_up_messages_ = 0;
  int64_t total_wire_overhead_bytes_ = 0;
  int64_t round_wire_overhead_bytes_ = 0;
};

}  // namespace rfed

#endif  // RFED_FL_COMM_H_
