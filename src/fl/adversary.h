#ifndef RFED_FL_ADVERSARY_H_
#define RFED_FL_ADVERSARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace rfed {

/// Client-side fault models beyond the wire faults of fl/channel.h: a
/// seeded subset of clients *misbehaves* — emitting non-finite updates,
/// flipping the sign of their deltas, scaling them, adding Gaussian
/// noise, or training on flipped labels. Zero configuration (mode
/// "none") injects nothing and consumes no randomness, so clean runs are
/// bit-identical to the pre-adversary simulator.
struct AdversaryOptions {
  /// Behavior of the adversarial clients:
  ///   "none"       — no adversaries (the default).
  ///   "nan"        — the NaN/Inf emitter: the uploaded update is filled
  ///                  with alternating quiet-NaN / +Inf values, the
  ///                  classic diverged-client signature.
  ///   "sign_flip"  — uploads w_t - (y_k - w_t): the exact negation of
  ///                  the client's learning progress (gradient-ascent
  ///                  poisoning).
  ///   "scale"      — uploads w_t + scale * (y_k - w_t): a boosted update
  ///                  that dominates a plain weighted mean.
  ///   "noise"      — adds iid N(0, noise_sigma) to every coordinate of
  ///                  the update (keyed per (client, round), call-order
  ///                  independent).
  ///   "label_flip" — trains honestly but on remapped labels
  ///                  (y -> num_classes-1-y), the data-poisoning variant;
  ///                  the update itself is left untouched.
  std::string mode = "none";
  /// Fraction of clients that are adversarial; round(fraction * N)
  /// clients are picked once per run from a dedicated seed lineage, so
  /// the same seed always corrupts the same clients.
  double fraction = 0.0;
  double scale = 100.0;      ///< multiplier of the "scale" attack
  double noise_sigma = 1.0;  ///< stddev of the "noise" attack

  bool enabled() const { return mode != "none" && fraction > 0.0; }
};

/// True iff `mode` is one of the AdversaryOptions behaviors.
bool KnownAdversaryMode(const std::string& mode);

/// The run's adversary: owns the (deterministic) choice of which clients
/// misbehave and applies the configured corruption. All randomness is
/// keyed on (seed, client, round) — never on shared mutable state — so
/// the injected faults are identical across sim modes, thread counts and
/// checkpoint/resume boundaries.
class Adversary {
 public:
  /// Aborts (RFED_CHECK) on an unknown mode or fraction outside [0, 1].
  Adversary(const AdversaryOptions& options, uint64_t seed, int num_clients);

  const AdversaryOptions& options() const { return options_; }

  /// Whether `client` is one of the round(fraction * N) bad actors.
  bool IsAdversarial(int client) const {
    return adversarial_[static_cast<size_t>(client)] != 0;
  }
  int num_adversarial() const { return num_adversarial_; }

  /// True when the attack perturbs the *uploaded update* (every mode
  /// except "none" and "label_flip").
  bool CorruptsUpdates() const;
  /// True for the "label_flip" data-poisoning mode.
  bool CorruptsLabels() const;

  /// The update `client` actually reports for round `round` in place of
  /// its honest trained state: identity for honest clients, else the
  /// configured corruption of the delta from `global`. Thread-safe and
  /// call-order independent (const; keyed draws only).
  Tensor CorruptUpdate(int client, int round, const Tensor& global,
                       const Tensor& trained) const;

  /// Remaps the labels of an adversarial client's training batch in
  /// place (y -> num_classes-1-y). No-op for honest clients or modes
  /// other than "label_flip".
  void CorruptLabels(int client, std::vector<int>* labels,
                     int num_classes) const;

 private:
  AdversaryOptions options_;
  uint64_t seed_;
  std::vector<char> adversarial_;
  int num_adversarial_ = 0;
};

}  // namespace rfed

#endif  // RFED_FL_ADVERSARY_H_
