#include "fl/fedprox.h"

#include "fl/model_state.h"

namespace rfed {

FedProx::FedProx(const FlConfig& config, double mu, const Dataset* train_data,
                 std::vector<ClientView> clients,
                 const ModelFactory& model_factory)
    : FederatedAlgorithm("FedProx", config, train_data, std::move(clients),
                         model_factory),
      mu_(mu) {}

void FedProx::OnRoundStart(int round, const std::vector<int>& selected) {
  round_start_state_ = global_state();
}

void FedProx::PostBackward(int client,
                           const std::vector<Variable*>& params) {
  // Reads the frozen round-start state only; `params` belongs to the
  // model instance training this client (thread-pool safe).
  AddProximalToGradients(round_start_state_, mu_, params);
}

void FedProx::DecodeTrainContext(int round, int client,
                                 CheckpointReader* reader) {
  round_start_state_ = global_state();
}

}  // namespace rfed
