#ifndef RFED_FL_SECURE_AGG_H_
#define RFED_FL_SECURE_AGG_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace rfed {

/// Simulation of pairwise-additive-mask secure aggregation (Bonawitz et
/// al. style), the standard mechanism FL deployments combine with
/// FedAvg-family algorithms so the server only ever sees the *sum* of
/// client updates. Every cohort pair (i, j), i < j, derives a shared
/// mask m_ij from a common seed; client i uploads update + Σ_j±m_ij with
/// sign +1 for j > i and -1 for j < i, so the masks cancel exactly in
/// the server-side sum.
///
/// This is a fidelity substrate: it demonstrates (and tests) that the
/// algorithms in this repository are compatible with sum-only servers —
/// FedAvg aggregation and the rFedAvg+ averaged δ map both only need
/// sums. It is not hardened cryptography (masks come from the simulator
/// PRG, there is no dropout-recovery protocol).
class SecureAggregator {
 public:
  /// mask_scale controls how large the masks are relative to the data —
  /// big masks make individual uploads statistically useless.
  SecureAggregator(int64_t dim, uint64_t session_seed,
                   double mask_scale = 10.0);

  /// Masked upload of `client`'s update given the round's cohort
  /// (sorted or not; must contain `client`). Masks are deterministic in
  /// (session_seed, pair, dim) — independent of cohort order — so the
  /// two sides of each pair derive identical m_ij without interaction.
  Tensor Mask(int client, const Tensor& update,
              const std::vector<int>& cohort) const;

  /// Server-side aggregate: the plain sum of masked uploads. The masks
  /// cancel exactly only when every cohort member's upload is present;
  /// with dropouts the residual masks stay in the sum (no recovery
  /// protocol — see the class comment).
  static Tensor SumMasked(const std::vector<Tensor>& masked_uploads);

  int64_t dim() const { return dim_; }

 private:
  /// Deterministic pairwise mask for the unordered pair {a, b}.
  Tensor PairMask(int a, int b) const;

  int64_t dim_;
  uint64_t session_seed_;
  double mask_scale_;
};

}  // namespace rfed

#endif  // RFED_FL_SECURE_AGG_H_
