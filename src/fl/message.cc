#include "fl/message.h"

#include <cstring>

#include "tensor/serialize.h"
#include "util/check.h"
#include "util/hash.h"

namespace rfed {
namespace {

// Local size_t aliases of the public framing constants.
constexpr size_t kHeaderBytes = static_cast<size_t>(FlMessage::kHeaderBytes);
constexpr size_t kChecksumBytes =
    static_cast<size_t>(FlMessage::kChecksumBytes);

template <typename T>
void AppendRaw(const T& value, std::vector<uint8_t>* out) {
  const auto* p = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
T ReadRaw(const std::vector<uint8_t>& buf, size_t* offset) {
  RFED_CHECK_LE(*offset + sizeof(T), buf.size());
  T value;
  std::memcpy(&value, buf.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return value;
}

template <typename T>
T PeekRaw(const std::vector<uint8_t>& buf, size_t offset) {
  T value;
  std::memcpy(&value, buf.data() + offset, sizeof(T));
  return value;
}

}  // namespace

int64_t FlMessage::EncodedBytes() const {
  int64_t bytes = static_cast<int64_t>(kHeaderBytes + kChecksumBytes);
  for (const Tensor& t : payload) bytes += SerializedBytes(t);
  return bytes;
}

void FlMessage::EncodeTo(std::vector<uint8_t>* out) const {
  const size_t start = out->size();
  int64_t payload_bytes = 0;
  for (const Tensor& t : payload) payload_bytes += SerializedBytes(t);
  AppendRaw<int32_t>(static_cast<int32_t>(kind), out);
  AppendRaw<int32_t>(round, out);
  AppendRaw<int32_t>(sender, out);
  AppendRaw<int32_t>(static_cast<int32_t>(payload.size()), out);
  AppendRaw<int64_t>(payload_bytes, out);
  for (const Tensor& t : payload) SerializeTensor(t, out);
  AppendRaw<uint32_t>(Fnv1a32(out->data() + start, out->size() - start), out);
}

uint32_t FlMessage::Checksum() const {
  std::vector<uint8_t> buffer;
  EncodeTo(&buffer);
  return PeekRaw<uint32_t>(buffer, buffer.size() - kChecksumBytes);
}

FlMessage FlMessage::Decode(const std::vector<uint8_t>& buffer,
                            size_t* offset) {
  FlMessage message;
  const size_t start = *offset;
  const int32_t kind = ReadRaw<int32_t>(buffer, offset);
  RFED_CHECK_GE(kind, 0);
  RFED_CHECK_LE(kind, 4);
  message.kind = static_cast<Kind>(kind);
  message.round = ReadRaw<int32_t>(buffer, offset);
  message.sender = ReadRaw<int32_t>(buffer, offset);
  const int32_t count = ReadRaw<int32_t>(buffer, offset);
  RFED_CHECK_GE(count, 0);
  const int64_t payload_bytes = ReadRaw<int64_t>(buffer, offset);
  RFED_CHECK_GE(payload_bytes, 0);
  const size_t body_end = start + kHeaderBytes +
                          static_cast<size_t>(payload_bytes);
  RFED_CHECK_LE(body_end + kChecksumBytes, buffer.size());
  message.payload.reserve(static_cast<size_t>(count));
  for (int32_t i = 0; i < count; ++i) {
    message.payload.push_back(DeserializeTensor(buffer, offset));
  }
  RFED_CHECK_EQ(*offset, body_end);
  const uint32_t stored = ReadRaw<uint32_t>(buffer, offset);
  RFED_CHECK_EQ(stored, Fnv1a32(buffer.data() + start, body_end - start))
      << "message checksum mismatch";
  return message;
}

bool FlMessage::TryDecode(const std::vector<uint8_t>& buffer, size_t* offset,
                          FlMessage* out) {
  const size_t start = *offset;
  if (start > buffer.size() ||
      buffer.size() - start < kHeaderBytes + kChecksumBytes) {
    return false;
  }
  const int32_t kind = PeekRaw<int32_t>(buffer, start);
  const int32_t count = PeekRaw<int32_t>(buffer, start + 3 * sizeof(int32_t));
  const int64_t payload_bytes =
      PeekRaw<int64_t>(buffer, start + 4 * sizeof(int32_t));
  if (kind < 0 || kind > 4 || count < 0 || payload_bytes < 0) return false;
  const size_t remaining = buffer.size() - start - kHeaderBytes -
                           kChecksumBytes;
  if (static_cast<uint64_t>(payload_bytes) > remaining) return false;
  const size_t body_end = start + kHeaderBytes +
                          static_cast<size_t>(payload_bytes);
  const uint32_t stored = PeekRaw<uint32_t>(buffer, body_end);
  if (stored != Fnv1a32(buffer.data() + start, body_end - start)) return false;
  // The checksum matched, so the bytes are exactly what EncodeTo wrote;
  // the aborting decoder is now safe to run.
  size_t cursor = start;
  *out = Decode(buffer, &cursor);
  *offset = cursor;
  return true;
}

}  // namespace rfed
