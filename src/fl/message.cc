#include "fl/message.h"

#include <cstring>

#include "tensor/serialize.h"
#include "util/check.h"

namespace rfed {
namespace {

template <typename T>
void AppendRaw(const T& value, std::vector<uint8_t>* out) {
  const auto* p = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
T ReadRaw(const std::vector<uint8_t>& buf, size_t* offset) {
  RFED_CHECK_LE(*offset + sizeof(T), buf.size());
  T value;
  std::memcpy(&value, buf.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return value;
}

}  // namespace

int64_t FlMessage::EncodedBytes() const {
  int64_t bytes = 3 * static_cast<int64_t>(sizeof(int32_t)) +
                  static_cast<int64_t>(sizeof(int32_t));  // payload count
  for (const Tensor& t : payload) bytes += SerializedBytes(t);
  return bytes;
}

void FlMessage::EncodeTo(std::vector<uint8_t>* out) const {
  AppendRaw<int32_t>(static_cast<int32_t>(kind), out);
  AppendRaw<int32_t>(round, out);
  AppendRaw<int32_t>(sender, out);
  AppendRaw<int32_t>(static_cast<int32_t>(payload.size()), out);
  for (const Tensor& t : payload) SerializeTensor(t, out);
}

FlMessage FlMessage::Decode(const std::vector<uint8_t>& buffer,
                            size_t* offset) {
  FlMessage message;
  const int32_t kind = ReadRaw<int32_t>(buffer, offset);
  RFED_CHECK_GE(kind, 0);
  RFED_CHECK_LE(kind, 4);
  message.kind = static_cast<Kind>(kind);
  message.round = ReadRaw<int32_t>(buffer, offset);
  message.sender = ReadRaw<int32_t>(buffer, offset);
  const int32_t count = ReadRaw<int32_t>(buffer, offset);
  RFED_CHECK_GE(count, 0);
  message.payload.reserve(static_cast<size_t>(count));
  for (int32_t i = 0; i < count; ++i) {
    message.payload.push_back(DeserializeTensor(buffer, offset));
  }
  return message;
}

}  // namespace rfed
