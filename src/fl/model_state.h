#ifndef RFED_FL_MODEL_STATE_H_
#define RFED_FL_MODEL_STATE_H_

#include <vector>

#include "autograd/variable.h"

namespace rfed {

// Helpers mapping between a model's parameter list and the flat float
// vector exchanged between server and clients. Parameter order comes from
// Module::Parameters(), which is deterministic, so flatten/load round-trips
// exactly on every simulated node.

/// Total scalar count of a parameter list.
int64_t ParameterCount(const std::vector<Variable*>& params);

/// Concatenates all parameter values into a rank-1 tensor.
Tensor FlattenParameters(const std::vector<Variable*>& params);

/// Writes a flat state back into the parameters (shapes must match).
void LoadParameters(const Tensor& flat, const std::vector<Variable*>& params);

/// Concatenates all parameter gradients (zeros for parameters that have
/// no accumulated gradient yet).
Tensor FlattenGradients(const std::vector<Variable*>& params);

/// Adds scale * flat[segment] into each parameter's gradient; used by
/// SCAFFOLD-style control-variate corrections.
void AddFlatToGradients(const Tensor& flat, double scale,
                        const std::vector<Variable*>& params);

/// Adds scale * (param - reference[segment]) into each parameter's
/// gradient; used by FedProx's proximal term.
void AddProximalToGradients(const Tensor& reference, double mu,
                            const std::vector<Variable*>& params);

/// Bytes on the wire for one model-state transfer (float32 payload).
int64_t StateBytes(const std::vector<Variable*>& params);

}  // namespace rfed

#endif  // RFED_FL_MODEL_STATE_H_
