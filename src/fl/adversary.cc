#include "fl/adversary.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/hash.h"
#include "util/rng.h"

namespace rfed {

bool KnownAdversaryMode(const std::string& mode) {
  return mode == "none" || mode == "nan" || mode == "sign_flip" ||
         mode == "scale" || mode == "noise" || mode == "label_flip";
}

Adversary::Adversary(const AdversaryOptions& options, uint64_t seed,
                     int num_clients)
    : options_(options), seed_(seed) {
  RFED_CHECK(KnownAdversaryMode(options_.mode))
      << "unknown adversary mode '" << options_.mode
      << "' (none|nan|sign_flip|scale|noise|label_flip)";
  RFED_CHECK_GE(options_.fraction, 0.0);
  RFED_CHECK_LE(options_.fraction, 1.0);
  RFED_CHECK_GE(options_.noise_sigma, 0.0);
  adversarial_.assign(static_cast<size_t>(num_clients), 0);
  if (!options_.enabled()) return;
  num_adversarial_ = static_cast<int>(
      std::lround(options_.fraction * static_cast<double>(num_clients)));
  num_adversarial_ = std::min(num_adversarial_, num_clients);
  // The bad actors are fixed for the whole run and drawn from their own
  // seed lineage, so enabling an attack never perturbs the training,
  // channel, or sim randomness.
  Rng pick(seed_);
  for (int k : pick.SampleWithoutReplacement(num_clients, num_adversarial_)) {
    adversarial_[static_cast<size_t>(k)] = 1;
  }
}

bool Adversary::CorruptsUpdates() const {
  return options_.enabled() && options_.mode != "label_flip";
}

bool Adversary::CorruptsLabels() const {
  return options_.enabled() && options_.mode == "label_flip";
}

Tensor Adversary::CorruptUpdate(int client, int round, const Tensor& global,
                                const Tensor& trained) const {
  if (!CorruptsUpdates() || !IsAdversarial(client)) return trained;
  if (options_.mode == "nan") {
    // Alternate quiet NaN and +Inf so both non-finite classes hit the
    // server's validation screen.
    Tensor bad(trained.shape());
    for (int64_t i = 0; i < bad.size(); ++i) {
      bad.at(i) = (i % 2 == 0) ? std::numeric_limits<float>::quiet_NaN()
                               : std::numeric_limits<float>::infinity();
    }
    return bad;
  }
  if (options_.mode == "sign_flip") {
    // w_t - (y_k - w_t) = 2 w_t - y_k.
    Tensor out = global;
    out.MulInPlace(2.0f);
    out.SubInPlace(trained);
    return out;
  }
  if (options_.mode == "scale") {
    // w_t + scale * (y_k - w_t).
    Tensor delta = trained;
    delta.SubInPlace(global);
    Tensor out = global;
    out.Axpy(static_cast<float>(options_.scale), delta);
    return out;
  }
  RFED_CHECK(options_.mode == "noise");
  // Per-(client, round) keyed stream: the same draw whatever the call
  // order, thread count, or resume point.
  Rng noise(MixU64(seed_, MixU64(static_cast<uint64_t>(client) + 1,
                                 static_cast<uint64_t>(round) + 1)));
  Tensor out = trained;
  for (int64_t i = 0; i < out.size(); ++i) {
    out.at(i) +=
        static_cast<float>(noise.Normal(0.0, options_.noise_sigma));
  }
  return out;
}

void Adversary::CorruptLabels(int client, std::vector<int>* labels,
                              int num_classes) const {
  if (!CorruptsLabels() || !IsAdversarial(client)) return;
  for (int& y : *labels) y = num_classes - 1 - y;
}

}  // namespace rfed
