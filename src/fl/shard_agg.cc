#include "fl/shard_agg.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "util/check.h"

namespace rfed {
namespace {

/// Largest power of two <= x (x >= 1).
int64_t FloorPow2(int64_t x) {
  int64_t p = 1;
  while (p * 2 <= x) p *= 2;
  return p;
}

/// Canonical split point of an n-leaf range: the largest power of two
/// strictly below n.
int64_t SplitPoint(int64_t n) { return FloorPow2(n - 1); }

/// Canonical reduction of the scaled leaves values[lo, lo + n).
Tensor ReduceLeaves(const std::vector<Tensor>& values,
                    const std::vector<float>& scales, int64_t lo,
                    int64_t n) {
  if (n == 1) {
    Tensor leaf = values[static_cast<size_t>(lo)];
    leaf.MulInPlace(scales[static_cast<size_t>(lo)]);
    return leaf;
  }
  const int64_t h = SplitPoint(n);
  Tensor left = ReduceLeaves(values, scales, lo, h);
  const Tensor right = ReduceLeaves(values, scales, lo + h, n - h);
  left.AddInPlace(right);
  return left;
}

/// Canonical reduction of the upper tree over precomputed shard partials.
/// `shard` indexes partials, `leaf_n` is the number of original leaves
/// under this range. Because fanout is a power of two, the canonical
/// split of any range wider than one shard lands on a shard boundary
/// (SplitPoint(leaf_n) >= fanout and both are powers of two), so this
/// recursion reproduces the full-leaf tree exactly.
Tensor ReduceShards(std::vector<Tensor>* partials, int fanout, int64_t shard,
                    int64_t leaf_n) {
  if (leaf_n <= fanout) {
    return std::move((*partials)[static_cast<size_t>(shard)]);
  }
  const int64_t h = SplitPoint(leaf_n);
  Tensor left = ReduceShards(partials, fanout, shard, h);
  const Tensor right =
      ReduceShards(partials, fanout, shard + h / fanout, leaf_n - h);
  left.AddInPlace(right);
  return left;
}

/// Cuts [0, size) into roughly even contiguous blocks, one per task.
std::vector<std::pair<int64_t, int64_t>> CoordinateBlocks(int64_t size,
                                                          ThreadPool* pool) {
  const int tasks = pool == nullptr
                        ? 1
                        : static_cast<int>(std::min<int64_t>(
                              size, static_cast<int64_t>(pool->num_threads()) * 4));
  std::vector<std::pair<int64_t, int64_t>> blocks;
  const int n = std::max(tasks, 1);
  blocks.reserve(static_cast<size_t>(n));
  for (int b = 0; b < n; ++b) {
    const int64_t lo = size * b / n;
    const int64_t hi = size * (b + 1) / n;
    if (lo < hi) blocks.emplace_back(lo, hi);
  }
  return blocks;
}

void RunBlocks(const std::vector<std::pair<int64_t, int64_t>>& blocks,
               ThreadPool* pool,
               const std::function<void(int64_t, int64_t)>& fn) {
  if (pool != nullptr && blocks.size() > 1) {
    pool->ParallelFor(static_cast<int>(blocks.size()), [&](int b) {
      fn(blocks[static_cast<size_t>(b)].first,
         blocks[static_cast<size_t>(b)].second);
    });
  } else {
    for (const auto& [lo, hi] : blocks) fn(lo, hi);
  }
}

}  // namespace

bool IsPow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

int ShardCount(int64_t m, int fanout) {
  RFED_CHECK_GT(m, 0);
  RFED_CHECK_GT(fanout, 0);
  return static_cast<int>((m + fanout - 1) / fanout);
}

Tensor ShardTreeWeightedSum(const std::vector<Tensor>& values,
                            const std::vector<float>& scales, int fanout,
                            ThreadPool* pool) {
  RFED_CHECK(!values.empty());
  RFED_CHECK_EQ(values.size(), scales.size());
  RFED_CHECK(IsPow2(fanout)) << "shard fanout must be a power of two, got "
                             << fanout;
  const int64_t m = static_cast<int64_t>(values.size());
  const int shards = ShardCount(m, fanout);
  std::vector<Tensor> partials(static_cast<size_t>(shards));
  const auto shard_fn = [&](int s) {
    const int64_t lo = static_cast<int64_t>(s) * fanout;
    const int64_t n = std::min<int64_t>(fanout, m - lo);
    partials[static_cast<size_t>(s)] = ReduceLeaves(values, scales, lo, n);
  };
  if (pool != nullptr && shards > 1) {
    pool->ParallelFor(shards, shard_fn);
  } else {
    for (int s = 0; s < shards; ++s) shard_fn(s);
  }
  return ReduceShards(&partials, fanout, 0, m);
}

Tensor PairwiseTreeSum(const std::vector<const Tensor*>& leaves) {
  RFED_CHECK(!leaves.empty());
  // Same recursion as ReduceLeaves with unit scales, but over borrowed
  // tensors so callers need not copy their inputs up front.
  const std::function<Tensor(int64_t, int64_t)> reduce =
      [&](int64_t lo, int64_t n) -> Tensor {
    if (n == 1) return *leaves[static_cast<size_t>(lo)];
    const int64_t h = SplitPoint(n);
    Tensor left = reduce(lo, h);
    const Tensor right = reduce(lo + h, n - h);
    left.AddInPlace(right);
    return left;
  };
  return reduce(0, static_cast<int64_t>(leaves.size()));
}

void StreamingTreeSum::Push(Tensor leaf) {
  if (leaves_ == 0 && stack_.empty()) {
    tensor_bytes_ = leaf.size() * static_cast<int64_t>(sizeof(float));
  }
  peak_bytes_ = std::max(
      peak_bytes_,
      static_cast<int64_t>(stack_.size() + 1) * tensor_bytes_);
  Tensor sum = std::move(leaf);
  int64_t width = 1;
  // Binary-counter carry: two equal-width subtrees are adjacent in leaf
  // order, so older + newer is exactly the canonical pairing.
  while (!stack_.empty() && stack_.back().width == width) {
    stack_.back().sum.AddInPlace(sum);
    sum = std::move(stack_.back().sum);
    width *= 2;
    stack_.pop_back();
  }
  stack_.push_back(Node{std::move(sum), width});
  ++leaves_;
}

Tensor StreamingTreeSum::Finish() {
  RFED_CHECK(!stack_.empty());
  // Right-associated fold of the remaining partials (widths descending
  // from bottom to top of the stack) — the canonical tree of a non-power-
  // of-two leaf count splits off its largest power of two on the left,
  // which is exactly this fold.
  Tensor acc = std::move(stack_.back().sum);
  stack_.pop_back();
  while (!stack_.empty()) {
    stack_.back().sum.AddInPlace(acc);
    acc = std::move(stack_.back().sum);
    stack_.pop_back();
  }
  leaves_ = 0;
  return acc;
}

Tensor ShardedTrimmedMean(const std::vector<Tensor>& values,
                          const std::vector<double>& weights,
                          double trim_fraction, ThreadPool* pool) {
  RFED_CHECK(!values.empty());
  RFED_CHECK_GE(trim_fraction, 0.0);
  RFED_CHECK_LT(trim_fraction, 0.5);
  const size_t trim = ResolveTrimCount(trim_fraction, values.size());
  Tensor out(values[0].shape());
  RunBlocks(CoordinateBlocks(out.size(), pool), pool,
            [&](int64_t lo, int64_t hi) {
              TrimmedMeanRange(values, weights, trim, lo, hi, &out);
            });
  return out;
}

Tensor ShardedMedian(const std::vector<Tensor>& values,
                     const std::vector<double>& weights, ThreadPool* pool) {
  RFED_CHECK(!values.empty());
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  RFED_CHECK_GT(total_weight, 0.0);
  Tensor out(values[0].shape());
  RunBlocks(CoordinateBlocks(out.size(), pool), pool,
            [&](int64_t lo, int64_t hi) {
              WeightedMedianRange(values, weights, total_weight, lo, hi, &out);
            });
  return out;
}

Tensor ShardedNormBoundedMean(const Tensor& reference,
                              const std::vector<Tensor>& values,
                              const std::vector<double>& weights,
                              double clip_multiplier, NormClipReport* report,
                              ThreadPool* pool) {
  // Phase 1 (per-update norms and clip scales) is sequential and shared
  // with the flat rule; only the per-coordinate accumulation shards.
  std::vector<Tensor> deltas;
  const std::vector<float> scales = NormClipScales(
      reference, values, weights, clip_multiplier, &deltas, report);
  Tensor out = reference;
  RunBlocks(CoordinateBlocks(out.size(), pool), pool,
            [&](int64_t lo, int64_t hi) {
              ClippedMeanRange(deltas, scales, lo, hi, &out);
            });
  return out;
}

}  // namespace rfed
