#ifndef RFED_FL_TYPES_H_
#define RFED_FL_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fl/adversary.h"
#include "fl/channel.h"
#include "fl/robust_agg.h"
#include "nn/optimizer.h"
#include "sim/options.h"

namespace rfed {

/// One client's view of the shared corpus: the examples it owns for local
/// training and an optional private test slice used by the fairness
/// evaluation (Fig. 11).
struct ClientView {
  std::vector<int> train_indices;
  std::vector<int> test_indices;
};

/// Autograd execution strategy for local training (see docs/AUTOGRAD.md
/// and autograd/tape.h). Both knobs are bit-identical on/off by
/// construction — replay reruns the same kernels over the same bytes in
/// the same order, and checkpointing never changes the backward
/// schedule — so they only trade wall time and peak memory.
struct AutogradOptions {
  /// Record each client bout's step-0 graph and replay it (same nodes,
  /// cached backward order, fresh batch data) for the remaining local
  /// steps; rebuilt automatically when the batch shape changes or a
  /// non-replayable op (dropout) appears. On by default.
  bool static_graph = true;
  /// Gradient checkpointing for LSTM BPTT: drop per-timestep gate
  /// activations at segment close and rematerialize them just before
  /// their backward runs. Roughly one extra forward per timestep in
  /// exchange for O(1)-per-timestep activation memory. Off by default.
  bool checkpoint = false;
};

/// Hyperparameters shared by all federated algorithms; mirrors the paper's
/// experimental settings (Sec. VI-A): C communication rounds, E local
/// steps, mini-batch size B, sample ratio SR and the local optimizer.
struct FlConfig {
  int rounds = 60;            ///< C
  int local_steps = 5;        ///< E
  int batch_size = 32;        ///< B
  double sample_ratio = 1.0;  ///< SR; 1.0 = full participation
  double lr = 0.1;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  uint64_t seed = 1;
  /// Max examples per client used when computing δ maps / local losses
  /// that require a full-data pass (caps simulator cost; 0 = no cap).
  int64_t max_examples_per_pass = 256;
  /// Lossy compressor applied to client->server model updates (see
  /// fl/compression.h): "none", "q8", "q4", "topk10", "topk1", "sketch".
  std::string upload_compressor = "none";
  /// How the server picks the round's cohort (see fl/selection.h):
  /// "uniform" (FedAvg's sampling) or "loss" (adaptive, biased toward
  /// high-loss clients — the paper's future-work direction).
  std::string client_selection = "uniform";
  /// Probability that a sampled client drops out (straggler/network
  /// failure) after downloading the model but before reporting back; its
  /// round is wasted and the server aggregates over the survivors. At
  /// least one client always survives. 0 disables the fault model.
  double dropout_prob = 0.0;
  /// Message-level fault injection (see fl/channel.h): every simulated
  /// transfer can be dropped, corrupted, duplicated, or delayed past the
  /// round deadline, with retry + backoff. All algorithms aggregate over
  /// whichever clients' updates actually arrive. Defaults to a
  /// transparent channel (no faults, bit-identical to the direct path).
  FaultOptions fault;
  /// Adversarial *client* fault injection (see fl/adversary.h): a seeded
  /// fraction of clients misbehaves — NaN/Inf emission, sign-flipped or
  /// scaled updates, Gaussian update noise, or label-flipped local
  /// training. Defaults to no adversaries (bit-identical clean runs).
  AdversaryOptions adversary;
  /// Server-side defenses (see fl/robust_agg.h): the non-finite update
  /// screen and the robust aggregation rule. The defaults (validate on,
  /// aggregator "mean") leave clean runs bit-identical to the undefended
  /// simulator.
  RobustAggOptions robust;
  /// Discrete-event simulation runtime (see sim/options.h): virtual
  /// clock, per-client compute-time models, byte->latency network model,
  /// and the server's round-termination policy (sync barrier, deadline
  /// cut, or staleness-weighted buffered async). Defaults to sync mode
  /// with free compute/network — bit-identical to the pre-sim simulator.
  SimOptions sim;
  /// Worker threads for the sampled clients' local training. <= 1 runs
  /// the sequential in-caller path (the default); > 1 trains clients of
  /// a round in parallel on per-client scratch models with per-client
  /// RNG streams, bit-identical to the sequential path.
  int num_threads = 1;
  /// Hierarchical (sharded) server aggregation (see fl/shard_agg.h):
  /// number of client updates per shard task of the canonical pairwise
  /// reduction tree. Must be a power of two when set. 0 (the default)
  /// keeps the original flat accumulation loop, byte-identical to every
  /// existing golden; any positive value yields the canonical-tree
  /// result, which is itself byte-identical across all power-of-two
  /// fanouts and thread counts.
  int shard_fanout = 0;
  /// Streaming aggregation chunk: when > 0 (requires shard_fanout > 0),
  /// the barrier round trains and uploads the cohort in chunks of this
  /// many clients, folding each update into an O(log n) streaming tree
  /// accumulator instead of buffering all sampled updates. Bit-identical
  /// to the all-at-once sharded path on fault-free channels; only
  /// algorithms using the default FedAvg mean support it. 0 disables.
  int stream_chunk = 0;
  /// Worker threads *inside* the tensor kernels (blocked GEMM / conv;
  /// see tensor/kernels.h). <= 1 keeps every kernel on its calling
  /// thread (the default). Any value is bit-identical — the kernels'
  /// deterministic partition never splits a reduction — so this only
  /// trades wall time, pinned by the golden suite across {1, 2, 4}.
  int kernel_threads = 1;
  /// Enables the per-shape kernel autotuner (tensor/autotune.h): the
  /// first calls on each GEMM shape time a fixed tile-candidate set and
  /// later calls use the winner. Every candidate is bit-identical, so
  /// this only trades wall time — a tuned run produces the same bytes
  /// as an untuned one (pinned by tests/kernel_test.cc). Off by default
  /// so run timings stay deterministic.
  bool kernel_autotune = false;
  /// Optional autotuner cache file (requires kernel_autotune): winning
  /// tiles persist across processes, keyed by (op, isa, shape). A
  /// corrupt or incompatible cache file aborts. "" = in-process only.
  std::string kernel_autotune_cache;
  /// Turns on the observability layer (obs/trace.h) for the run: phase
  /// and kernel trace spans plus FLOP counters. Purely additive — spans
  /// consume no RNG draws and touch no tensor state, so a seeded run is
  /// byte-identical with tracing on or off (pinned by tests/obs_test.cc).
  /// The per-round metric snapshots in RoundMetrics::metrics are
  /// collected regardless of this flag.
  bool trace = false;
  /// Autograd tape strategy for the local-training loops (static-graph
  /// replay and LSTM gradient checkpointing; both bit-identical knobs).
  AutogradOptions autograd;
};

}  // namespace rfed

#endif  // RFED_FL_TYPES_H_
