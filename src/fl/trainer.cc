#include "fl/trainer.h"

#include <cmath>
#include <numeric>
#include <utility>

#include "fl/checkpoint.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels.h"
#include "util/check.h"
#include "util/logging.h"

namespace rfed {

FederatedTrainer::FederatedTrainer(FederatedAlgorithm* algorithm,
                                   const Dataset* test_data,
                                   const TrainerOptions& options)
    : algorithm_(algorithm), test_data_(test_data), options_(options) {
  RFED_CHECK(algorithm_ != nullptr);
  RFED_CHECK(test_data_ != nullptr);
  RFED_CHECK_GE(options_.eval_every, 1);
  const int64_t n = test_data_->size();
  int64_t take = n;
  if (options_.eval_max_examples > 0) {
    take = std::min(take, options_.eval_max_examples);
  }
  // Deterministic stride subsample of the test set.
  eval_indices_.reserve(static_cast<size_t>(take));
  const double stride = static_cast<double>(n) / static_cast<double>(take);
  for (int64_t i = 0; i < take; ++i) {
    eval_indices_.push_back(static_cast<int>(
        std::min<double>(i * stride, static_cast<double>(n - 1))));
  }
}

double FederatedTrainer::EvaluateOn(const Dataset* data,
                                    const std::vector<int>& indices) {
  RFED_CHECK(!indices.empty());
  FeatureModel* model = algorithm_->GlobalModel();
  int64_t correct = 0;
  for (size_t begin = 0; begin < indices.size();
       begin += static_cast<size_t>(options_.eval_batch_size)) {
    const size_t end = std::min(
        begin + static_cast<size_t>(options_.eval_batch_size), indices.size());
    std::vector<int> chunk(indices.begin() + static_cast<int64_t>(begin),
                           indices.begin() + static_cast<int64_t>(end));
    Batch batch = data->GetBatch(chunk);
    ModelOutput out = model->Forward(batch);
    const std::vector<int> pred = ArgmaxRows(out.logits.value());
    for (size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == batch.labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(indices.size());
}

double FederatedTrainer::EvaluateGlobal() {
  return EvaluateOn(test_data_, eval_indices_);
}

std::vector<double> FederatedTrainer::PerClientAccuracy(
    const Dataset* client_test_data, const std::vector<ClientView>& views) {
  std::vector<double> out;
  out.reserve(views.size());
  for (const auto& view : views) {
    if (view.test_indices.empty()) {
      out.push_back(std::nan(""));
    } else {
      out.push_back(EvaluateOn(client_test_data, view.test_indices));
    }
  }
  return out;
}

RunHistory FederatedTrainer::Run(int rounds, const RunCheckpoint* resume) {
  RunHistory history;
  history.algorithm = algorithm_->name();
  int start_round = 0;
  if (resume != nullptr) {
    RFED_CHECK_LE(resume->next_round, rounds)
        << "checkpoint is past the requested round count";
    algorithm_->LoadRunState(resume->algorithm_state);
    history = resume->history;
    start_round = resume->next_round;
  }
  history.rounds.reserve(static_cast<size_t>(rounds));
  // Per-round registry deltas are taken against the snapshot at entry,
  // so a second Run() in the same process (the registry is global and
  // cumulative) still reports only its own rounds.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Gauge* scratch_gauge = registry.GetGauge("kernel.scratch_peak_bytes");
  // High-water mark of outstanding tape/pool tensor bytes across every
  // training thread (tensor/buffer_pool.h). Registered here, next to the
  // kernel scratch peak, so the CSV column exists from round 0.
  obs::Gauge* tape_peak_gauge = registry.GetGauge("autograd.tape_peak_bytes");
  std::vector<obs::MetricSample> prev_snapshot = registry.Snapshot();
  for (int round = start_round; round < rounds; ++round) {
    RoundResult result = [&] {
      obs::TraceSpan trace_span("round");
      return algorithm_->RunRound(round);
    }();
    RoundMetrics metrics;
    metrics.round = round;
    metrics.train_loss = result.train_loss;
    metrics.round_seconds = result.seconds;
    metrics.round_bytes = algorithm_->comm().round_bytes();
    const ChannelStats& ch =
        std::as_const(*algorithm_).channel().stats();
    metrics.delivered_messages = ch.round_delivered;
    metrics.dropped_messages = ch.round_dropped;
    metrics.retried_messages = ch.round_retried;
    metrics.virtual_ms = result.virtual_ms;
    metrics.client_p50_ms = result.client_p50_ms;
    metrics.client_p95_ms = result.client_p95_ms;
    metrics.stragglers_cut = result.stragglers_cut;
    metrics.mean_staleness = result.mean_staleness;
    metrics.peak_scratch_bytes = ScratchArena::PeakBytes();
    scratch_gauge->Set(static_cast<double>(metrics.peak_scratch_bytes));
    tape_peak_gauge->Set(static_cast<double>(BufferPool::PeakBytes()));
    std::vector<obs::MetricSample> snapshot = registry.Snapshot();
    metrics.metrics = obs::SnapshotDelta(prev_snapshot, snapshot);
    prev_snapshot = std::move(snapshot);
    const bool eval_now =
        (round % options_.eval_every == 0) || round == rounds - 1;
    if (eval_now) {
      obs::TraceSpan trace_span("evaluate");
      metrics.test_accuracy = EvaluateGlobal();
    } else {
      metrics.test_accuracy = std::nan("");
    }
    if (options_.verbose && eval_now) {
      RFED_LOG(Info) << algorithm_->name() << " round " << round
                     << " loss=" << metrics.train_loss
                     << " acc=" << metrics.test_accuracy;
    }
    history.rounds.push_back(metrics);
    const bool stop_now =
        options_.stop_requested != nullptr &&
        options_.stop_requested->load(std::memory_order_relaxed);
    const bool cadence_hit = options_.checkpoint_every > 0 &&
                             (round + 1) % options_.checkpoint_every == 0;
    // A stop request flushes a checkpoint even off-cadence, so a resumed
    // run continues from exactly the round boundary the signal landed on.
    if (!options_.checkpoint_path.empty() && (cadence_hit || stop_now)) {
      obs::TraceSpan trace_span("checkpoint");
      RunCheckpoint ck;
      ck.next_round = round + 1;
      ck.history = history;
      algorithm_->SaveRunState(&ck.algorithm_state);
      ck.Save(options_.checkpoint_path);
    }
    if (stop_now) {
      if (options_.verbose) {
        RFED_LOG(Info) << algorithm_->name() << " stop requested after round "
                       << round;
      }
      break;
    }
  }
  return history;
}

}  // namespace rfed
