#include "sim/network_model.h"

#include "util/check.h"

namespace rfed {
namespace {

double TransferMs(double bytes_per_ms, double base_ms, int64_t bytes) {
  double t = base_ms;
  if (bytes_per_ms > 0.0) t += static_cast<double>(bytes) / bytes_per_ms;
  return t;
}

}  // namespace

NetworkModel::NetworkModel(const NetworkModelConfig& config)
    : config_(config) {
  RFED_CHECK_GE(config_.down_bytes_per_ms, 0.0);
  RFED_CHECK_GE(config_.up_bytes_per_ms, 0.0);
  RFED_CHECK_GE(config_.base_latency_ms, 0.0);
}

double NetworkModel::DownMs(int64_t bytes) const {
  return TransferMs(config_.down_bytes_per_ms, config_.base_latency_ms, bytes);
}

double NetworkModel::UpMs(int64_t bytes) const {
  return TransferMs(config_.up_bytes_per_ms, config_.base_latency_ms, bytes);
}

}  // namespace rfed
