#ifndef RFED_SIM_COMPUTE_MODEL_H_
#define RFED_SIM_COMPUTE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rfed {

/// Families of per-client local-computation cost. All times are virtual
/// milliseconds per local step; a client running E steps costs E times
/// the per-step draw.
enum class ComputeModelKind {
  /// Every step costs exactly mean_ms_per_step (times the client's fixed
  /// speed factor). With mean 0 this is the "free compute" model the
  /// pre-sim simulator implicitly assumed.
  kConstant,
  /// Lognormal stragglers: per-round multiplicative noise
  /// exp(sigma·z − sigma²/2) with z ~ N(0,1), mean-preserving, so raising
  /// sigma fattens the tail without shifting the average. The standard
  /// empirical model of device-time heterogeneity.
  kLognormal,
  /// Drifting devices: each client's speed factor compounds by its own
  /// per-round drift rate (thermal throttling, background load), so slow
  /// clients get slower over the run.
  kDrift,
};

struct ComputeModelConfig {
  ComputeModelKind kind = ComputeModelKind::kConstant;
  /// Base cost of one local step, virtual ms. 0 = compute is free.
  double mean_ms_per_step = 0.0;
  /// Lognormal severity sigma (kLognormal only).
  double sigma = 1.0;
  /// Max |per-round drift rate| (kDrift only); each client draws its own
  /// rate uniformly from [-drift, +drift] at construction.
  double drift = 0.05;
  /// Static device heterogeneity: each client draws a fixed speed factor
  /// uniformly from [1−spread, 1+spread] at construction (clipped to
  /// stay positive). 0 = identical devices.
  double hetero_spread = 0.0;

  bool free() const {
    return kind == ComputeModelKind::kConstant && mean_ms_per_step == 0.0;
  }
};

/// Deterministic per-client compute-time model. Two properties make it
/// safe inside the sim runtime:
///   1. It owns its own RNG lineage derived from the config seed, so
///      enabling stragglers never perturbs sampling/batching/init
///      randomness (same isolation contract as FaultChannel).
///   2. SampleMs(client, round, ·) draws from a stream keyed by
///      (client, round) — not from shared mutable state — so the value
///      is independent of call order and of how many threads train
///      clients in parallel.
class ComputeTimeModel {
 public:
  ComputeTimeModel(const ComputeModelConfig& config, uint64_t seed,
                   int num_clients);

  /// Virtual milliseconds `client` spends running `local_steps` steps in
  /// `round`. Pure function of (config, seed, client, round, steps).
  double SampleMs(int client, int round, int local_steps) const;

  const ComputeModelConfig& config() const { return config_; }

 private:
  ComputeModelConfig config_;
  uint64_t seed_;
  /// Fixed per-client speed factors (hetero_spread) and drift rates.
  std::vector<double> speed_;
  std::vector<double> drift_rate_;
};

/// "constant" / "lognormal" / "drift" <-> ComputeModelKind; Parse returns
/// false on an unknown name.
bool ParseComputeModelKind(const std::string& name, ComputeModelKind* kind);
const char* ToString(ComputeModelKind kind);

}  // namespace rfed

#endif  // RFED_SIM_COMPUTE_MODEL_H_
