#include "sim/compute_model.h"

#include <cmath>

#include "util/check.h"

namespace rfed {
namespace {

/// Stateless stream key for one (client, round) draw. The odd constants
/// only need to decorrelate the two coordinates; Rng's splitmix64 seeding
/// does the heavy mixing.
uint64_t DrawKey(uint64_t seed, int client, int round) {
  return seed ^ (static_cast<uint64_t>(client) * 0x9e3779b97f4a7c15ULL +
                 static_cast<uint64_t>(round) * 0xbf58476d1ce4e5b9ULL +
                 0x94d049bb133111ebULL);
}

}  // namespace

ComputeTimeModel::ComputeTimeModel(const ComputeModelConfig& config,
                                   uint64_t seed, int num_clients)
    : config_(config), seed_(seed) {
  RFED_CHECK_GE(config_.mean_ms_per_step, 0.0);
  RFED_CHECK_GE(config_.sigma, 0.0);
  RFED_CHECK_GE(config_.hetero_spread, 0.0);
  RFED_CHECK_GT(num_clients, 0);
  speed_.assign(static_cast<size_t>(num_clients), 1.0);
  drift_rate_.assign(static_cast<size_t>(num_clients), 0.0);
  // Construction-time draws come from one dedicated stream; they are
  // fixed device properties, not per-round noise.
  Rng device_rng(seed_ ^ 0xd1f7ab1e5eedULL);
  if (config_.hetero_spread > 0.0) {
    for (auto& s : speed_) {
      s = device_rng.Uniform(1.0 - config_.hetero_spread,
                             1.0 + config_.hetero_spread);
      if (s < 0.05) s = 0.05;  // never a free (or negative-time) device
    }
  }
  if (config_.kind == ComputeModelKind::kDrift) {
    for (auto& d : drift_rate_) {
      d = device_rng.Uniform(-config_.drift, config_.drift);
    }
  }
}

double ComputeTimeModel::SampleMs(int client, int round,
                                  int local_steps) const {
  RFED_CHECK_GE(client, 0);
  RFED_CHECK_LT(client, static_cast<int>(speed_.size()));
  RFED_CHECK_GE(local_steps, 0);
  double per_step =
      config_.mean_ms_per_step * speed_[static_cast<size_t>(client)];
  if (per_step == 0.0) return 0.0;
  switch (config_.kind) {
    case ComputeModelKind::kConstant:
      break;
    case ComputeModelKind::kLognormal: {
      if (config_.sigma > 0.0) {
        Rng draw(DrawKey(seed_, client, round));
        const double z = draw.Normal();
        // Mean-preserving lognormal: E[exp(sigma z - sigma^2/2)] = 1.
        per_step *= std::exp(config_.sigma * z -
                             0.5 * config_.sigma * config_.sigma);
      }
      break;
    }
    case ComputeModelKind::kDrift: {
      const double rate = drift_rate_[static_cast<size_t>(client)];
      per_step *= std::pow(1.0 + rate, static_cast<double>(round));
      break;
    }
  }
  return per_step * static_cast<double>(local_steps);
}

bool ParseComputeModelKind(const std::string& name, ComputeModelKind* kind) {
  if (name == "constant") {
    *kind = ComputeModelKind::kConstant;
  } else if (name == "lognormal") {
    *kind = ComputeModelKind::kLognormal;
  } else if (name == "drift") {
    *kind = ComputeModelKind::kDrift;
  } else {
    return false;
  }
  return true;
}

const char* ToString(ComputeModelKind kind) {
  switch (kind) {
    case ComputeModelKind::kConstant:
      return "constant";
    case ComputeModelKind::kLognormal:
      return "lognormal";
    case ComputeModelKind::kDrift:
      return "drift";
  }
  return "?";
}

}  // namespace rfed
