#ifndef RFED_SIM_NETWORK_MODEL_H_
#define RFED_SIM_NETWORK_MODEL_H_

#include <cstdint>

namespace rfed {

/// Link model converting the byte counts the CommStats ledger already
/// charges into virtual transfer latencies. Bandwidths are bytes per
/// virtual millisecond (1000 bytes/ms = 1 MB/s); 0 means infinite (the
/// transfer is instantaneous apart from base latency). Fault-channel
/// delays (exponential link delays, retry backoff) are *added on top* by
/// the round loop via FaultChannel::last_latency_ms().
struct NetworkModelConfig {
  double down_bytes_per_ms = 0.0;  ///< server -> client bandwidth
  double up_bytes_per_ms = 0.0;    ///< client -> server bandwidth
  double base_latency_ms = 0.0;    ///< fixed per-transfer latency

  bool free() const {
    return down_bytes_per_ms == 0.0 && up_bytes_per_ms == 0.0 &&
           base_latency_ms == 0.0;
  }
};

/// Deterministic bytes -> virtual-ms conversion; no random draws (random
/// link behavior belongs to the FaultChannel, which has its own stream).
class NetworkModel {
 public:
  explicit NetworkModel(const NetworkModelConfig& config);

  double DownMs(int64_t bytes) const;
  double UpMs(int64_t bytes) const;

  const NetworkModelConfig& config() const { return config_; }

 private:
  NetworkModelConfig config_;
};

}  // namespace rfed

#endif  // RFED_SIM_NETWORK_MODEL_H_
