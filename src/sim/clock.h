#ifndef RFED_SIM_CLOCK_H_
#define RFED_SIM_CLOCK_H_

#include "obs/trace.h"
#include "util/check.h"

namespace rfed {

/// Virtual clock of the discrete-event simulation runtime. Time is a
/// double in simulated milliseconds, starts at zero, and only ever moves
/// forward — the round loop advances it to the timestamp of each event
/// it processes, so "how long the federation took" is a deterministic
/// function of the configured compute/network models, never of host
/// wall-clock speed or thread scheduling.
///
/// Every advance is published to the tracing layer
/// (`obs::SetTraceVirtualNowMs`) so `TraceSpan`s can stamp virtual
/// begin/end times alongside wall time.
class VirtualClock {
 public:
  double now_ms() const { return now_ms_; }

  /// Moves the clock to `t_ms`. Going backwards is a simulation bug
  /// (events must be processed in timestamp order).
  void AdvanceTo(double t_ms) {
    RFED_CHECK_GE(t_ms, now_ms_) << "virtual clock cannot run backwards";
    now_ms_ = t_ms;
    obs::SetTraceVirtualNowMs(now_ms_);
  }

  /// Moves the clock forward by a nonnegative duration.
  void AdvanceBy(double delta_ms) {
    RFED_CHECK_GE(delta_ms, 0.0);
    now_ms_ += delta_ms;
    obs::SetTraceVirtualNowMs(now_ms_);
  }

 private:
  double now_ms_ = 0.0;
};

}  // namespace rfed

#endif  // RFED_SIM_CLOCK_H_
