#ifndef RFED_SIM_OPTIONS_H_
#define RFED_SIM_OPTIONS_H_

#include <string>

#include "sim/compute_model.h"
#include "sim/network_model.h"

namespace rfed {

/// How the server ends a communication round under simulated time.
enum class SimMode {
  /// Barrier synchronization: the round's virtual duration is the slowest
  /// sampled client's download + compute + upload. Semantically identical
  /// to the pre-sim simulator — with free compute and network models the
  /// run is bit-identical to it.
  kSync,
  /// Deadline-based partial aggregation: the server cuts the round at
  /// deadline_ms of virtual time and aggregates only the updates that
  /// arrived, generalizing the fault channel's survivor renormalization
  /// to time-based straggler cuts. Late updates are discarded (the work
  /// and bytes are still spent).
  kDeadline,
  /// Staleness-aware buffered asynchrony (FedBuff-style): clients train
  /// continuously against whatever global version they last downloaded;
  /// the server applies an update after every async_buffer arrivals,
  /// weighting each contribution by 1/(1+staleness) where staleness is
  /// the number of server versions that elapsed since the client
  /// downloaded. One RunRound == one server update.
  kAsync,
};

/// Knobs of the discrete-event simulation runtime. The defaults (sync
/// mode, free compute, free network) reproduce the pre-sim simulator
/// bit-for-bit: no extra random draws, zero virtual durations.
struct SimOptions {
  SimMode mode = SimMode::kSync;
  ComputeModelConfig compute;
  NetworkModelConfig network;
  /// kDeadline: virtual ms after round start at which the server
  /// aggregates whatever arrived. Must be > 0 in deadline mode.
  double deadline_ms = 0.0;
  /// kAsync: number of delivered client updates buffered per server
  /// update (K). Clamped to the cohort size at runtime.
  int async_buffer = 2;
};

bool ParseSimMode(const std::string& name, SimMode* mode);
const char* ToString(SimMode mode);

}  // namespace rfed

#endif  // RFED_SIM_OPTIONS_H_
