#ifndef RFED_SIM_EVENT_QUEUE_H_
#define RFED_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace rfed {

/// One scheduled occurrence in the discrete-event simulation: a client's
/// update arriving at the server, a deadline firing, etc. `client` and
/// `payload` are opaque to the queue; the round loop uses `client` for
/// the sending client id and `payload` as a handle into its in-flight
/// bookkeeping.
struct SimEvent {
  double time_ms = 0.0;  ///< virtual timestamp the event fires at
  int client = -1;
  int64_t payload = 0;
  /// Monotonic insertion index; breaks timestamp ties deterministically
  /// (FIFO among simultaneous events) so the schedule never depends on
  /// heap internals or platform qsort behavior.
  int64_t seq = 0;
};

/// Deterministic min-priority queue over virtual time. Pop order is
/// (time_ms, seq) lexicographic: earliest event first, insertion order
/// among equal timestamps. This total order is the determinism contract
/// of the sim runtime — two runs with the same seed push the same events
/// and therefore pop the same schedule, regardless of thread count.
class EventQueue {
 public:
  /// Schedules an event; returns its insertion sequence number.
  int64_t Push(double time_ms, int client, int64_t payload);

  /// Removes and returns the earliest event. Requires !empty().
  SimEvent Pop();

  /// Earliest pending timestamp. Requires !empty().
  double NextTimeMs() const;

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      if (a.time_ms != b.time_ms) return a.time_ms > b.time_ms;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  int64_t next_seq_ = 0;
};

}  // namespace rfed

#endif  // RFED_SIM_EVENT_QUEUE_H_
