#include "sim/options.h"

namespace rfed {

bool ParseSimMode(const std::string& name, SimMode* mode) {
  if (name == "sync") {
    *mode = SimMode::kSync;
  } else if (name == "deadline") {
    *mode = SimMode::kDeadline;
  } else if (name == "async") {
    *mode = SimMode::kAsync;
  } else {
    return false;
  }
  return true;
}

const char* ToString(SimMode mode) {
  switch (mode) {
    case SimMode::kSync:
      return "sync";
    case SimMode::kDeadline:
      return "deadline";
    case SimMode::kAsync:
      return "async";
  }
  return "?";
}

}  // namespace rfed
