#include "sim/event_queue.h"

#include "util/check.h"

namespace rfed {

int64_t EventQueue::Push(double time_ms, int client, int64_t payload) {
  RFED_CHECK_GE(time_ms, 0.0);
  SimEvent event;
  event.time_ms = time_ms;
  event.client = client;
  event.payload = payload;
  event.seq = next_seq_++;
  heap_.push(event);
  return event.seq;
}

SimEvent EventQueue::Pop() {
  RFED_CHECK(!heap_.empty()) << "Pop on empty event queue";
  SimEvent event = heap_.top();
  heap_.pop();
  return event;
}

double EventQueue::NextTimeMs() const {
  RFED_CHECK(!heap_.empty()) << "NextTimeMs on empty event queue";
  return heap_.top().time_ms;
}

}  // namespace rfed
