# Empty dependencies file for property2_test.
# This may be replaced when dependencies are built.
