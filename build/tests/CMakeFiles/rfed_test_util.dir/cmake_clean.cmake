file(REMOVE_RECURSE
  "CMakeFiles/rfed_test_util.dir/test_util.cc.o"
  "CMakeFiles/rfed_test_util.dir/test_util.cc.o.d"
  "librfed_test_util.a"
  "librfed_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfed_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
