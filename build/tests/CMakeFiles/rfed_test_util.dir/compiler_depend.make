# Empty compiler generated dependencies file for rfed_test_util.
# This may be replaced when dependencies are built.
