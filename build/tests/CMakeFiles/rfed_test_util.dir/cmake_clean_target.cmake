file(REMOVE_RECURSE
  "librfed_test_util.a"
)
