file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_fairness.dir/bench_fig11_fairness.cc.o"
  "CMakeFiles/bench_fig11_fairness.dir/bench_fig11_fairness.cc.o.d"
  "bench_fig11_fairness"
  "bench_fig11_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
