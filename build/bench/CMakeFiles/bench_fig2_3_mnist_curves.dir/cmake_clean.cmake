file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_3_mnist_curves.dir/bench_fig2_3_mnist_curves.cc.o"
  "CMakeFiles/bench_fig2_3_mnist_curves.dir/bench_fig2_3_mnist_curves.cc.o.d"
  "bench_fig2_3_mnist_curves"
  "bench_fig2_3_mnist_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_3_mnist_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
