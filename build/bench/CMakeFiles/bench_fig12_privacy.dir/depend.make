# Empty dependencies file for bench_fig12_privacy.
# This may be replaced when dependencies are built.
