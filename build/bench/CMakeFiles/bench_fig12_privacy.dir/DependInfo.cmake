
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_privacy.cc" "bench/CMakeFiles/bench_fig12_privacy.dir/bench_fig12_privacy.cc.o" "gcc" "bench/CMakeFiles/bench_fig12_privacy.dir/bench_fig12_privacy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/rfed_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
