file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cross_device.dir/bench_table2_cross_device.cc.o"
  "CMakeFiles/bench_table2_cross_device.dir/bench_table2_cross_device.cc.o.d"
  "bench_table2_cross_device"
  "bench_table2_cross_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cross_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
