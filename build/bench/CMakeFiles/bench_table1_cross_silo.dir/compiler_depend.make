# Empty compiler generated dependencies file for bench_table1_cross_silo.
# This may be replaced when dependencies are built.
