file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cross_silo.dir/bench_table1_cross_silo.cc.o"
  "CMakeFiles/bench_table1_cross_silo.dir/bench_table1_cross_silo.cc.o.d"
  "bench_table1_cross_silo"
  "bench_table1_cross_silo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cross_silo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
