file(REMOVE_RECURSE
  "librfed_bench_common.a"
)
