file(REMOVE_RECURSE
  "CMakeFiles/rfed_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/rfed_bench_common.dir/bench_common.cc.o.d"
  "librfed_bench_common.a"
  "librfed_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfed_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
