# Empty compiler generated dependencies file for rfed_bench_common.
# This may be replaced when dependencies are built.
