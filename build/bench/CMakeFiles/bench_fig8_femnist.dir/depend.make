# Empty dependencies file for bench_fig8_femnist.
# This may be replaced when dependencies are built.
