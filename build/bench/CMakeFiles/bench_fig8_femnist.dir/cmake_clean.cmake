file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_femnist.dir/bench_fig8_femnist.cc.o"
  "CMakeFiles/bench_fig8_femnist.dir/bench_fig8_femnist.cc.o.d"
  "bench_fig8_femnist"
  "bench_fig8_femnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_femnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
