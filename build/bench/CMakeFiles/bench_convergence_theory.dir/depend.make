# Empty dependencies file for bench_convergence_theory.
# This may be replaced when dependencies are built.
