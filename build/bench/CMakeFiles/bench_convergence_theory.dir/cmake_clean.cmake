file(REMOVE_RECURSE
  "CMakeFiles/bench_convergence_theory.dir/bench_convergence_theory.cc.o"
  "CMakeFiles/bench_convergence_theory.dir/bench_convergence_theory.cc.o.d"
  "bench_convergence_theory"
  "bench_convergence_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convergence_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
