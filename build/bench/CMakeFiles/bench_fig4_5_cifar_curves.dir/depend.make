# Empty dependencies file for bench_fig4_5_cifar_curves.
# This may be replaced when dependencies are built.
