# Empty dependencies file for bench_fig6_7_sent140_curves.
# This may be replaced when dependencies are built.
