file(REMOVE_RECURSE
  "librfed_analysis.a"
)
