file(REMOVE_RECURSE
  "CMakeFiles/rfed_analysis.dir/analysis/classification.cc.o"
  "CMakeFiles/rfed_analysis.dir/analysis/classification.cc.o.d"
  "CMakeFiles/rfed_analysis.dir/analysis/stats.cc.o"
  "CMakeFiles/rfed_analysis.dir/analysis/stats.cc.o.d"
  "CMakeFiles/rfed_analysis.dir/analysis/tsne.cc.o"
  "CMakeFiles/rfed_analysis.dir/analysis/tsne.cc.o.d"
  "librfed_analysis.a"
  "librfed_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfed_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
