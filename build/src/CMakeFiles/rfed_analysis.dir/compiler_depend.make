# Empty compiler generated dependencies file for rfed_analysis.
# This may be replaced when dependencies are built.
