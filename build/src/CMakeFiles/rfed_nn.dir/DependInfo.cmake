
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv.cc" "src/CMakeFiles/rfed_nn.dir/nn/conv.cc.o" "gcc" "src/CMakeFiles/rfed_nn.dir/nn/conv.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/CMakeFiles/rfed_nn.dir/nn/embedding.cc.o" "gcc" "src/CMakeFiles/rfed_nn.dir/nn/embedding.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/rfed_nn.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/rfed_nn.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/rfed_nn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/rfed_nn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/rfed_nn.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/rfed_nn.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/CMakeFiles/rfed_nn.dir/nn/lstm.cc.o" "gcc" "src/CMakeFiles/rfed_nn.dir/nn/lstm.cc.o.d"
  "/root/repo/src/nn/models.cc" "src/CMakeFiles/rfed_nn.dir/nn/models.cc.o" "gcc" "src/CMakeFiles/rfed_nn.dir/nn/models.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/rfed_nn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/rfed_nn.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/norm.cc" "src/CMakeFiles/rfed_nn.dir/nn/norm.cc.o" "gcc" "src/CMakeFiles/rfed_nn.dir/nn/norm.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/rfed_nn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/rfed_nn.dir/nn/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfed_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
