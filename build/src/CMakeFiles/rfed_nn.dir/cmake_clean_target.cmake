file(REMOVE_RECURSE
  "librfed_nn.a"
)
