# Empty dependencies file for rfed_nn.
# This may be replaced when dependencies are built.
