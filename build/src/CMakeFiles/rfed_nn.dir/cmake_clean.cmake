file(REMOVE_RECURSE
  "CMakeFiles/rfed_nn.dir/nn/conv.cc.o"
  "CMakeFiles/rfed_nn.dir/nn/conv.cc.o.d"
  "CMakeFiles/rfed_nn.dir/nn/embedding.cc.o"
  "CMakeFiles/rfed_nn.dir/nn/embedding.cc.o.d"
  "CMakeFiles/rfed_nn.dir/nn/init.cc.o"
  "CMakeFiles/rfed_nn.dir/nn/init.cc.o.d"
  "CMakeFiles/rfed_nn.dir/nn/linear.cc.o"
  "CMakeFiles/rfed_nn.dir/nn/linear.cc.o.d"
  "CMakeFiles/rfed_nn.dir/nn/loss.cc.o"
  "CMakeFiles/rfed_nn.dir/nn/loss.cc.o.d"
  "CMakeFiles/rfed_nn.dir/nn/lstm.cc.o"
  "CMakeFiles/rfed_nn.dir/nn/lstm.cc.o.d"
  "CMakeFiles/rfed_nn.dir/nn/models.cc.o"
  "CMakeFiles/rfed_nn.dir/nn/models.cc.o.d"
  "CMakeFiles/rfed_nn.dir/nn/module.cc.o"
  "CMakeFiles/rfed_nn.dir/nn/module.cc.o.d"
  "CMakeFiles/rfed_nn.dir/nn/norm.cc.o"
  "CMakeFiles/rfed_nn.dir/nn/norm.cc.o.d"
  "CMakeFiles/rfed_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/rfed_nn.dir/nn/optimizer.cc.o.d"
  "librfed_nn.a"
  "librfed_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfed_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
