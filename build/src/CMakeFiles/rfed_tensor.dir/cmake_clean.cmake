file(REMOVE_RECURSE
  "CMakeFiles/rfed_tensor.dir/tensor/serialize.cc.o"
  "CMakeFiles/rfed_tensor.dir/tensor/serialize.cc.o.d"
  "CMakeFiles/rfed_tensor.dir/tensor/shape.cc.o"
  "CMakeFiles/rfed_tensor.dir/tensor/shape.cc.o.d"
  "CMakeFiles/rfed_tensor.dir/tensor/tensor.cc.o"
  "CMakeFiles/rfed_tensor.dir/tensor/tensor.cc.o.d"
  "CMakeFiles/rfed_tensor.dir/tensor/tensor_ops.cc.o"
  "CMakeFiles/rfed_tensor.dir/tensor/tensor_ops.cc.o.d"
  "librfed_tensor.a"
  "librfed_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfed_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
