# Empty compiler generated dependencies file for rfed_tensor.
# This may be replaced when dependencies are built.
