file(REMOVE_RECURSE
  "librfed_tensor.a"
)
