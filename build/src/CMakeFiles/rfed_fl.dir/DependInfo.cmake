
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/algorithm.cc" "src/CMakeFiles/rfed_fl.dir/fl/algorithm.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/algorithm.cc.o.d"
  "/root/repo/src/fl/checkpoint.cc" "src/CMakeFiles/rfed_fl.dir/fl/checkpoint.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/checkpoint.cc.o.d"
  "/root/repo/src/fl/compression.cc" "src/CMakeFiles/rfed_fl.dir/fl/compression.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/compression.cc.o.d"
  "/root/repo/src/fl/fedavgm.cc" "src/CMakeFiles/rfed_fl.dir/fl/fedavgm.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/fedavgm.cc.o.d"
  "/root/repo/src/fl/fednova.cc" "src/CMakeFiles/rfed_fl.dir/fl/fednova.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/fednova.cc.o.d"
  "/root/repo/src/fl/fedprox.cc" "src/CMakeFiles/rfed_fl.dir/fl/fedprox.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/fedprox.cc.o.d"
  "/root/repo/src/fl/message.cc" "src/CMakeFiles/rfed_fl.dir/fl/message.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/message.cc.o.d"
  "/root/repo/src/fl/metrics.cc" "src/CMakeFiles/rfed_fl.dir/fl/metrics.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/metrics.cc.o.d"
  "/root/repo/src/fl/model_state.cc" "src/CMakeFiles/rfed_fl.dir/fl/model_state.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/model_state.cc.o.d"
  "/root/repo/src/fl/qfedavg.cc" "src/CMakeFiles/rfed_fl.dir/fl/qfedavg.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/qfedavg.cc.o.d"
  "/root/repo/src/fl/scaffold.cc" "src/CMakeFiles/rfed_fl.dir/fl/scaffold.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/scaffold.cc.o.d"
  "/root/repo/src/fl/secure_agg.cc" "src/CMakeFiles/rfed_fl.dir/fl/secure_agg.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/secure_agg.cc.o.d"
  "/root/repo/src/fl/selection.cc" "src/CMakeFiles/rfed_fl.dir/fl/selection.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/selection.cc.o.d"
  "/root/repo/src/fl/trainer.cc" "src/CMakeFiles/rfed_fl.dir/fl/trainer.cc.o" "gcc" "src/CMakeFiles/rfed_fl.dir/fl/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfed_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
