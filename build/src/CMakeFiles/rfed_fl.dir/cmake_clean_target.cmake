file(REMOVE_RECURSE
  "librfed_fl.a"
)
