file(REMOVE_RECURSE
  "CMakeFiles/rfed_fl.dir/fl/algorithm.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/algorithm.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/checkpoint.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/checkpoint.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/compression.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/compression.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/fedavgm.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/fedavgm.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/fednova.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/fednova.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/fedprox.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/fedprox.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/message.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/message.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/metrics.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/metrics.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/model_state.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/model_state.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/qfedavg.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/qfedavg.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/scaffold.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/scaffold.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/secure_agg.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/secure_agg.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/selection.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/selection.cc.o.d"
  "CMakeFiles/rfed_fl.dir/fl/trainer.cc.o"
  "CMakeFiles/rfed_fl.dir/fl/trainer.cc.o.d"
  "librfed_fl.a"
  "librfed_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfed_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
