# Empty compiler generated dependencies file for rfed_fl.
# This may be replaced when dependencies are built.
