file(REMOVE_RECURSE
  "CMakeFiles/rfed_core.dir/core/convex_objective.cc.o"
  "CMakeFiles/rfed_core.dir/core/convex_objective.cc.o.d"
  "CMakeFiles/rfed_core.dir/core/delta_map.cc.o"
  "CMakeFiles/rfed_core.dir/core/delta_map.cc.o.d"
  "CMakeFiles/rfed_core.dir/core/dp_noise.cc.o"
  "CMakeFiles/rfed_core.dir/core/dp_noise.cc.o.d"
  "CMakeFiles/rfed_core.dir/core/mmd.cc.o"
  "CMakeFiles/rfed_core.dir/core/mmd.cc.o.d"
  "CMakeFiles/rfed_core.dir/core/personalization.cc.o"
  "CMakeFiles/rfed_core.dir/core/personalization.cc.o.d"
  "CMakeFiles/rfed_core.dir/core/rfedavg.cc.o"
  "CMakeFiles/rfed_core.dir/core/rfedavg.cc.o.d"
  "CMakeFiles/rfed_core.dir/core/rfedavg_plus.cc.o"
  "CMakeFiles/rfed_core.dir/core/rfedavg_plus.cc.o.d"
  "librfed_core.a"
  "librfed_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfed_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
