# Empty dependencies file for rfed_core.
# This may be replaced when dependencies are built.
