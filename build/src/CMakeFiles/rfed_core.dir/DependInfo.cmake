
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/convex_objective.cc" "src/CMakeFiles/rfed_core.dir/core/convex_objective.cc.o" "gcc" "src/CMakeFiles/rfed_core.dir/core/convex_objective.cc.o.d"
  "/root/repo/src/core/delta_map.cc" "src/CMakeFiles/rfed_core.dir/core/delta_map.cc.o" "gcc" "src/CMakeFiles/rfed_core.dir/core/delta_map.cc.o.d"
  "/root/repo/src/core/dp_noise.cc" "src/CMakeFiles/rfed_core.dir/core/dp_noise.cc.o" "gcc" "src/CMakeFiles/rfed_core.dir/core/dp_noise.cc.o.d"
  "/root/repo/src/core/mmd.cc" "src/CMakeFiles/rfed_core.dir/core/mmd.cc.o" "gcc" "src/CMakeFiles/rfed_core.dir/core/mmd.cc.o.d"
  "/root/repo/src/core/personalization.cc" "src/CMakeFiles/rfed_core.dir/core/personalization.cc.o" "gcc" "src/CMakeFiles/rfed_core.dir/core/personalization.cc.o.d"
  "/root/repo/src/core/rfedavg.cc" "src/CMakeFiles/rfed_core.dir/core/rfedavg.cc.o" "gcc" "src/CMakeFiles/rfed_core.dir/core/rfedavg.cc.o.d"
  "/root/repo/src/core/rfedavg_plus.cc" "src/CMakeFiles/rfed_core.dir/core/rfedavg_plus.cc.o" "gcc" "src/CMakeFiles/rfed_core.dir/core/rfedavg_plus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfed_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
