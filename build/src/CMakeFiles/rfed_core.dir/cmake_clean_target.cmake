file(REMOVE_RECURSE
  "librfed_core.a"
)
