# Empty compiler generated dependencies file for rfed_autograd.
# This may be replaced when dependencies are built.
