file(REMOVE_RECURSE
  "librfed_autograd.a"
)
