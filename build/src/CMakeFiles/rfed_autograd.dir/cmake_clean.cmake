file(REMOVE_RECURSE
  "CMakeFiles/rfed_autograd.dir/autograd/ops.cc.o"
  "CMakeFiles/rfed_autograd.dir/autograd/ops.cc.o.d"
  "CMakeFiles/rfed_autograd.dir/autograd/variable.cc.o"
  "CMakeFiles/rfed_autograd.dir/autograd/variable.cc.o.d"
  "librfed_autograd.a"
  "librfed_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfed_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
