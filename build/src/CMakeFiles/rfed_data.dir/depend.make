# Empty dependencies file for rfed_data.
# This may be replaced when dependencies are built.
