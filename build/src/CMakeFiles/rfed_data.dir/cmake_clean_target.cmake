file(REMOVE_RECURSE
  "librfed_data.a"
)
