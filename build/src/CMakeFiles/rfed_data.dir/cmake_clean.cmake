file(REMOVE_RECURSE
  "CMakeFiles/rfed_data.dir/data/batcher.cc.o"
  "CMakeFiles/rfed_data.dir/data/batcher.cc.o.d"
  "CMakeFiles/rfed_data.dir/data/dataset.cc.o"
  "CMakeFiles/rfed_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/rfed_data.dir/data/partition.cc.o"
  "CMakeFiles/rfed_data.dir/data/partition.cc.o.d"
  "CMakeFiles/rfed_data.dir/data/synthetic_images.cc.o"
  "CMakeFiles/rfed_data.dir/data/synthetic_images.cc.o.d"
  "CMakeFiles/rfed_data.dir/data/synthetic_text.cc.o"
  "CMakeFiles/rfed_data.dir/data/synthetic_text.cc.o.d"
  "librfed_data.a"
  "librfed_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfed_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
