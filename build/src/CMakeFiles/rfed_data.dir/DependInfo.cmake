
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/batcher.cc" "src/CMakeFiles/rfed_data.dir/data/batcher.cc.o" "gcc" "src/CMakeFiles/rfed_data.dir/data/batcher.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/rfed_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/rfed_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/partition.cc" "src/CMakeFiles/rfed_data.dir/data/partition.cc.o" "gcc" "src/CMakeFiles/rfed_data.dir/data/partition.cc.o.d"
  "/root/repo/src/data/synthetic_images.cc" "src/CMakeFiles/rfed_data.dir/data/synthetic_images.cc.o" "gcc" "src/CMakeFiles/rfed_data.dir/data/synthetic_images.cc.o.d"
  "/root/repo/src/data/synthetic_text.cc" "src/CMakeFiles/rfed_data.dir/data/synthetic_text.cc.o" "gcc" "src/CMakeFiles/rfed_data.dir/data/synthetic_text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rfed_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rfed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
