# Empty dependencies file for rfed_util.
# This may be replaced when dependencies are built.
