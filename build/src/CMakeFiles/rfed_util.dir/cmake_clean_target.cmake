file(REMOVE_RECURSE
  "librfed_util.a"
)
