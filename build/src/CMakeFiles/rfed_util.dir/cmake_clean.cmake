file(REMOVE_RECURSE
  "CMakeFiles/rfed_util.dir/util/check.cc.o"
  "CMakeFiles/rfed_util.dir/util/check.cc.o.d"
  "CMakeFiles/rfed_util.dir/util/csv_writer.cc.o"
  "CMakeFiles/rfed_util.dir/util/csv_writer.cc.o.d"
  "CMakeFiles/rfed_util.dir/util/flags.cc.o"
  "CMakeFiles/rfed_util.dir/util/flags.cc.o.d"
  "CMakeFiles/rfed_util.dir/util/logging.cc.o"
  "CMakeFiles/rfed_util.dir/util/logging.cc.o.d"
  "CMakeFiles/rfed_util.dir/util/rng.cc.o"
  "CMakeFiles/rfed_util.dir/util/rng.cc.o.d"
  "CMakeFiles/rfed_util.dir/util/string_util.cc.o"
  "CMakeFiles/rfed_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/rfed_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/rfed_util.dir/util/thread_pool.cc.o.d"
  "librfed_util.a"
  "librfed_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfed_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
