file(REMOVE_RECURSE
  "CMakeFiles/cross_silo_hospitals.dir/cross_silo_hospitals.cpp.o"
  "CMakeFiles/cross_silo_hospitals.dir/cross_silo_hospitals.cpp.o.d"
  "cross_silo_hospitals"
  "cross_silo_hospitals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_silo_hospitals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
