# Empty compiler generated dependencies file for cross_silo_hospitals.
# This may be replaced when dependencies are built.
