file(REMOVE_RECURSE
  "CMakeFiles/private_regularization.dir/private_regularization.cpp.o"
  "CMakeFiles/private_regularization.dir/private_regularization.cpp.o.d"
  "private_regularization"
  "private_regularization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_regularization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
