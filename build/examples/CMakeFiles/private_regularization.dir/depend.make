# Empty dependencies file for private_regularization.
# This may be replaced when dependencies are built.
