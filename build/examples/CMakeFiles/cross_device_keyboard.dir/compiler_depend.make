# Empty compiler generated dependencies file for cross_device_keyboard.
# This may be replaced when dependencies are built.
