file(REMOVE_RECURSE
  "CMakeFiles/cross_device_keyboard.dir/cross_device_keyboard.cpp.o"
  "CMakeFiles/cross_device_keyboard.dir/cross_device_keyboard.cpp.o.d"
  "cross_device_keyboard"
  "cross_device_keyboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_device_keyboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
